"""The message envelope carried by the transport."""

from dataclasses import dataclass, field


_envelope_counter = [0]


def _next_envelope_id():
    _envelope_counter[0] += 1
    return _envelope_counter[0]


@dataclass
class Envelope:
    """A payload in flight between two sites.

    ``size`` is in abstract data units; with the default infinite bandwidth
    it only feeds the traffic statistics, with a finite bandwidth it adds
    ``size / bandwidth`` of transmission time on top of the propagation
    latency (§2 of the paper: the two delay components).
    """

    src: int
    dst: int
    payload: object
    size: float = 1.0
    send_time: float = 0.0
    deliver_time: float = 0.0
    envelope_id: int = field(default_factory=_next_envelope_id)

    @property
    def in_flight_time(self):
        """Total time the envelope spent on the wire."""
        return self.deliver_time - self.send_time
