"""The message envelope carried by the transport."""

from itertools import count

_envelope_ids = count(1)


def _next_envelope_id():
    return next(_envelope_ids)


class Envelope:
    """A payload in flight between two sites.

    ``size`` is in abstract data units; with the default infinite bandwidth
    it only feeds the traffic statistics, with a finite bandwidth it adds
    ``size / bandwidth`` of transmission time on top of the propagation
    latency (§2 of the paper: the two delay components).

    Slotted, hand-rolled class rather than a dataclass: one envelope is
    allocated per send, which makes construction cost and per-instance
    memory part of the kernel's hot path.
    """

    __slots__ = ("src", "dst", "payload", "size", "send_time",
                 "deliver_time", "envelope_id")

    def __init__(self, src, dst, payload, size=1.0, send_time=0.0,
                 deliver_time=0.0, envelope_id=None):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.envelope_id = (next(_envelope_ids) if envelope_id is None
                            else envelope_id)

    @property
    def in_flight_time(self):
        """Total time the envelope spent on the wire."""
        return self.deliver_time - self.send_time

    def __repr__(self):
        return (f"Envelope(src={self.src!r}, dst={self.dst!r}, "
                f"payload={self.payload!r}, size={self.size!r}, "
                f"send_time={self.send_time!r}, "
                f"deliver_time={self.deliver_time!r}, "
                f"envelope_id={self.envelope_id!r})")
