"""Network substrate: sites, message transport, and Table 2 environments.

The paper's model (§4): a single server and many clients joined by a
high-speed network in which the *network latency* — propagation plus
switching delay — is the same between any two sites and in both directions,
and the transmission delay is negligible. The transport here implements
exactly that, plus two generalisations used by the ablation benches:
an arbitrary per-pair latency matrix and a finite data rate (so the
"message size does not matter" assumption can be tested rather than assumed).
"""

from repro.network.faults import (
    ClientCrash,
    FaultInjector,
    FaultSpec,
    PartitionWindow,
)
from repro.network.message import Envelope
from repro.network.presets import (
    NetworkEnvironment,
    TABLE2_ENVIRONMENTS,
    environment_for_latency,
)
from repro.network.reliable import Reliable, ReliableAck, ReliableLink
from repro.network.topology import MatrixTopology, Site, UniformTopology
from repro.network.transport import Network, NetworkStats

__all__ = [
    "ClientCrash",
    "Envelope",
    "FaultInjector",
    "FaultSpec",
    "MatrixTopology",
    "Network",
    "NetworkEnvironment",
    "NetworkStats",
    "PartitionWindow",
    "Reliable",
    "ReliableAck",
    "ReliableLink",
    "Site",
    "TABLE2_ENVIRONMENTS",
    "UniformTopology",
    "environment_for_latency",
]
