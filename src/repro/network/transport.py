"""Message transport: delivery scheduling and traffic accounting.

``Network.send`` is on the kernel's hot path (one call per protocol
message), so the transport is built fast-path style:

* the send implementation is **selected once per run** — plain, traced,
  or faulted — and bound directly as the instance's ``send`` attribute,
  so per-message code never re-checks ``sim.tracer`` or ``faults``
  (:meth:`Network.refresh_fast_path` re-selects; the tracer's
  ``bind_network`` calls it when tracing attaches after construction);
* per-(src, dst) link latency is **memoised** in a flat dict — the
  topology object is consulted once per pair, not once per message —
  with the bandwidth term's reciprocal-free division kept bit-identical
  to the unmemoised arithmetic;
* payload traffic classes are cached per payload *type* instead of
  re-deriving ``type(...).__name__`` (plus wrapper unwrapping) per send.

All fast paths produce byte-identical trajectories to the original
single-path implementation: same envelope fields, same heap timestamps
(including the ``now + (deliver - now)`` float quirk of the original
relative scheduling), same FIFO clamping, same stats.

Batched delivery (the default; ``config.batch_delivery``) goes one step
further: consecutive sends on the same (src, dst) link that compute the
*same* delivery timestamp coalesce into one heap entry holding a mutable
list, which fans out on pop.  Coalescing is only allowed while the batch
entry is the most recent heap push — every scheduling call allocates a
sequence number, so ``seq == batch.last_seq + 1`` proves nothing was
scheduled in between — which makes the fan-out order provably identical
to the unbatched per-message heap order (each appended message consumes
the very sequence number its own heap entry would have carried).  The
engine's logical-delivery counters (``Simulator._hidden`` /
``_extra_events`` / ``_batch_peak``) keep ``pending``,
``processed_events`` and ``peak_heap_depth`` identical to an unbatched
run.  The faulted path never batches (jitter makes shared timestamps
rare and duplicates complicate fan-out), and batching turns itself off
under the per-heap-entry engine trace hook.
"""

import heapq
from dataclasses import dataclass, field

from repro.network.message import Envelope

#: payload class -> traffic-class name, or _WRAPPER for classes carrying
#: an ``inner`` payload (reliable-channel framing) that must be unwrapped
#: per message.  Keyed by type, so the cache is stable across runs.
_WRAPPER = object()
_KIND_BY_CLASS = {}


def payload_kind(payload):
    """Traffic class of a payload. Reliable-channel wrappers are
    transparent: the protocol mix matters, not the framing."""
    cls = payload.__class__
    kind = _KIND_BY_CLASS.get(cls)
    if kind is None:
        kind = _WRAPPER if hasattr(payload, "inner") else cls.__name__
        _KIND_BY_CLASS[cls] = kind
    if kind is _WRAPPER:
        inner = payload.inner
        return cls.__name__ if inner is None else inner.__class__.__name__
    return kind


@dataclass
class NetworkStats:
    """Aggregate traffic counters, used to verify the paper's round-count
    arithmetic (g-2PL exchanges fewer, larger messages than s-2PL)."""

    messages_sent: int = 0
    data_units_sent: float = 0.0
    per_type: dict = field(default_factory=dict)

    def record(self, envelope):
        self.messages_sent += 1
        self.data_units_sent += envelope.size
        kind = payload_kind(envelope.payload)
        self.per_type[kind] = self.per_type.get(kind, 0) + 1


class SiteRegistry:
    """The site directory shared by every transport implementation.

    Both the simulator's :class:`Network` and the live TCP transport
    (:class:`repro.live.transport.LiveTransport`) register protocol sites
    the same way; protocol assembly code (``make_protocol`` callers) can
    therefore wire a run identically against either.
    """

    def __init__(self):
        self._sites = {}

    def add_site(self, site):
        """Register a site; its ``site_id`` must be unique."""
        if site.site_id in self._sites:
            raise ValueError(f"duplicate site id {site.site_id!r}")
        self._sites[site.site_id] = site
        site.attach(self)
        return site

    def site(self, site_id):
        """Look up a registered site."""
        return self._sites[site_id]

    @property
    def sites(self):
        """All registered sites (read-only view)."""
        return dict(self._sites)


class Network(SiteRegistry):
    """Delivers payloads between attached sites.

    Delivery delay = topology latency (propagation + switching) plus, when a
    finite ``bandwidth`` is configured, ``size / bandwidth`` of transmission
    time. The paper assumes infinite bandwidth (transmission negligible at
    gigabit rates); the finite setting exists for the A2 ablation.

    An optional :class:`~repro.network.faults.FaultInjector` makes the link
    lossy: it may drop, duplicate, or extra-delay each send, and severs
    messages whose flight interval overlaps a crash window of either
    endpoint.
    """

    def __init__(self, sim, topology, bandwidth=None, faults=None,
                 batch_delivery=True):
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth!r}")
        super().__init__()
        self.sim = sim
        self.topology = topology
        self.bandwidth = bandwidth
        self.faults = faults
        self.batch_delivery = batch_delivery
        self.stats = NetworkStats()
        self._last_deliver = {}  # (src, dst) -> last scheduled delivery time
        self._latency_cache = {}  # (src, dst) -> topology latency
        self._open_batches = {}  # (src, dst) -> [key, items, when, last_seq]
        self._thunk_cache = {}   # dst -> (callable, takes_payload)
        self._tracer = None
        self.refresh_fast_path()

    def refresh_fast_path(self):
        """Re-select the per-run send/deliver implementations.

        Called at construction and whenever the run's observers change
        (:meth:`~repro.obs.tracer.Tracer.bind_network` attaches a tracer).
        The chosen implementation is bound straight onto the instance, so
        dispatching a send is a single attribute load — no per-message
        tracer or faults checks.
        """
        tracer = self._tracer = self.sim.tracer
        # Per-heap-entry engine tracing samples every dispatch; a batch
        # entry would collapse k dispatch samples into one, so batching
        # stands down when that hook is armed.
        batch = (self.batch_delivery and self.faults is None
                 and (tracer is None or not tracer.engine_events))
        self._open_batches.clear()
        self._thunk_cache.clear()
        if self.faults is not None:
            self.send = self._send_faulted
        elif tracer is not None:
            self.send = (self._send_traced_batched if batch
                         else self._send_traced)
        else:
            self.send = (self._send_plain_batched if batch
                         else self._send_plain)
        self._deliver_impl = (self._deliver_plain if tracer is None
                              else self._deliver_traced)

    # -- delay model ---------------------------------------------------------

    def _base_latency(self, src, dst):
        cache = self._latency_cache
        key = (src, dst)
        latency = cache.get(key)
        if latency is None:
            latency = cache[key] = self.topology.latency(src, dst)
        return latency

    def delay(self, src, dst, size=1.0):
        """Total wire delay for a message of ``size`` between two sites."""
        latency = self._base_latency(src, dst)
        if self.bandwidth is not None:
            latency += size / self.bandwidth
        return latency

    # -- send fast paths -----------------------------------------------------
    #
    # ``send`` is assigned per instance by refresh_fast_path; the class
    # attribute below only provides the documented signature (and handles
    # the pathological case of a send before __init__ finished).

    def send(self, src, dst, payload, size=1.0):
        """Ship ``payload`` from ``src`` to ``dst``; returns the envelope.

        Messages between distinct pairs may overtake each other; messages on
        the same (src, dst) pair are always delivered in FIFO order: each
        computed delivery time (latency + transmission + any fault jitter)
        is clamped to the link's previous delivery time, serialising the
        link. Without the clamp a later small message would overtake an
        earlier large one whenever finite ``bandwidth`` (or jitter) makes
        the delay size-dependent.
        """
        self.refresh_fast_path()
        return self.send(src, dst, payload, size=size)

    def _send_plain(self, src, dst, payload, size=1.0):
        """Fast path: no tracer, no faults — the common benchmark cell."""
        sites = self._sites
        if dst not in sites:
            raise KeyError(f"unknown destination site {dst!r}")
        if src not in sites:
            raise KeyError(f"unknown source site {src!r}")
        sim = self.sim
        now = sim._now
        envelope = Envelope(src, dst, payload, size, now)
        stats = self.stats
        stats.messages_sent += 1
        stats.data_units_sent += size
        kind = payload_kind(payload)
        per_type = stats.per_type
        per_type[kind] = per_type.get(kind, 0) + 1
        latency_cache = self._latency_cache
        key = (src, dst)
        latency = latency_cache.get(key)
        if latency is None:
            latency = latency_cache[key] = self.topology.latency(src, dst)
        if self.bandwidth is not None:
            latency = latency + size / self.bandwidth
        deliver = now + latency
        last = self._last_deliver
        prev = last.get(key)
        if prev is not None and prev > deliver:
            deliver = prev
        last[key] = deliver
        # now + (deliver - now): the exact float the original relative
        # call_later produced; scheduling at `deliver` directly could move
        # the heap timestamp by one ulp and reorder ties.
        sim.schedule_at(now + (deliver - now), self._deliver_impl, envelope)
        envelope.deliver_time = deliver
        return envelope

    def _send_traced(self, src, dst, payload, size=1.0):
        """Tracer attached, no faults."""
        envelope = self._send_plain(src, dst, payload, size)
        tracer = self._tracer
        tracer.net_scheduled(envelope)
        tracer.net_send(envelope, payload_kind(payload))
        return envelope

    # -- batched sends -------------------------------------------------------
    #
    # A batch record is ``[key, items, when, last_seq, fn]``; the heap
    # entry holds the record itself, so later sends extend it in place
    # without touching the heap.  Every item on a record shares one
    # destination (batches are per link), so the delivery call ``fn`` is
    # resolved once per record, not per message.  The ``last_seq``
    # contiguity check (see module docstring) makes appending exactly
    # equivalent to pushing a fresh per-message entry, because the
    # appended message consumes the very sequence number that entry would
    # have carried.  Only stock protocol sites batch; a site with a
    # custom ``receive`` (or a reliable channel) keeps the classic
    # one-entry-per-message schedule, which is faster for traffic that
    # can never coalesce.

    def _resolve_thunk(self, dst):
        """Pick the per-destination delivery treatment once per run.

        Stock dispatcher sites with no reliable channel batch, taking the
        payload straight into ``_dispatch`` (untraced) or the envelope
        into ``receive`` (traced).  Anything else returns False: those
        destinations use the classic unbatched schedule.
        """
        site = self._sites[dst]
        from repro.protocols.base import _Dispatcher

        if (isinstance(site, _Dispatcher)
                and type(site).receive is _Dispatcher.receive
                and site.reliable is None):
            fn = site._dispatch if self._tracer is None else site.receive
        else:
            fn = False
        self._thunk_cache[dst] = fn
        return fn

    def _send_plain_batched(self, src, dst, payload, size=1.0):
        """Batched fast path: no tracer, no faults (the default)."""
        sites = self._sites
        if dst not in sites:
            raise KeyError(f"unknown destination site {dst!r}")
        if src not in sites:
            raise KeyError(f"unknown source site {src!r}")
        sim = self.sim
        now = sim._now
        envelope = Envelope(src, dst, payload, size, now)
        stats = self.stats
        stats.messages_sent += 1
        stats.data_units_sent += size
        kind = payload_kind(payload)
        per_type = stats.per_type
        per_type[kind] = per_type.get(kind, 0) + 1
        latency_cache = self._latency_cache
        key = (src, dst)
        latency = latency_cache.get(key)
        if latency is None:
            latency = latency_cache[key] = self.topology.latency(src, dst)
        if self.bandwidth is not None:
            latency = latency + size / self.bandwidth
        deliver = now + latency
        last = self._last_deliver
        prev = last.get(key)
        if prev is not None and prev > deliver:
            deliver = prev
        last[key] = deliver
        envelope.deliver_time = deliver
        # now + (deliver - now): the exact float the unbatched path
        # schedules at (see _send_plain).
        when = now + (deliver - now)
        cache = self._thunk_cache
        fn = cache[dst] if dst in cache else self._resolve_thunk(dst)
        if fn is False:
            sim.schedule_at(when, self._deliver_plain, envelope)
            return envelope
        seq = next(sim._seq)
        rec = self._open_batches.get(key)
        if rec is not None and rec[2] == when and rec[3] == seq - 1:
            rec[1].append(payload)
            rec[3] = seq
            sim._hidden += 1
        else:
            rec = [key, [payload], when, seq, fn]
            self._open_batches[key] = rec
            heapq.heappush(sim._heap,
                           (when, seq, self._deliver_batch, (rec,)))
        return envelope

    def _send_traced_batched(self, src, dst, payload, size=1.0):
        """Batched with a tracer attached: items carry full envelopes so
        the fan-out can replay ``net_delivered`` per message."""
        sites = self._sites
        if dst not in sites:
            raise KeyError(f"unknown destination site {dst!r}")
        if src not in sites:
            raise KeyError(f"unknown source site {src!r}")
        sim = self.sim
        now = sim._now
        envelope = Envelope(src, dst, payload, size, now)
        stats = self.stats
        stats.messages_sent += 1
        stats.data_units_sent += size
        kind = payload_kind(payload)
        per_type = stats.per_type
        per_type[kind] = per_type.get(kind, 0) + 1
        latency_cache = self._latency_cache
        key = (src, dst)
        latency = latency_cache.get(key)
        if latency is None:
            latency = latency_cache[key] = self.topology.latency(src, dst)
        if self.bandwidth is not None:
            latency = latency + size / self.bandwidth
        deliver = now + latency
        last = self._last_deliver
        prev = last.get(key)
        if prev is not None and prev > deliver:
            deliver = prev
        last[key] = deliver
        envelope.deliver_time = deliver
        when = now + (deliver - now)
        cache = self._thunk_cache
        fn = cache[dst] if dst in cache else self._resolve_thunk(dst)
        if fn is False:
            sim.schedule_at(when, self._deliver_traced, envelope)
        else:
            seq = next(sim._seq)
            rec = self._open_batches.get(key)
            if rec is not None and rec[2] == when and rec[3] == seq - 1:
                rec[1].append(envelope)
                rec[3] = seq
                sim._hidden += 1
            else:
                rec = [key, [envelope], when, seq, fn]
                self._open_batches[key] = rec
                heapq.heappush(
                    sim._heap,
                    (when, seq, self._deliver_batch_traced, (rec,)))
        tracer = self._tracer
        tracer.net_scheduled(envelope)
        tracer.net_send(envelope, kind)
        return envelope

    def _deliver_batch(self, rec):
        """Fan a coalesced entry out in append (= sequence) order.

        The record is closed first so a handler's same-timestamp send on
        this link opens a fresh entry (it pops right after this one —
        unbatched order).  Depth samples and the extra-delivery count are
        reported per logical delivery, so engine diagnostics match the
        unbatched run exactly (``k - idx`` deliveries of this batch are
        still pending when delivery ``idx`` is sampled).
        """
        open_batches = self._open_batches
        key = rec[0]
        if open_batches.get(key) is rec:
            del open_batches[key]
        lst = rec[1]
        fn = rec[4]
        if len(lst) == 1:
            fn(lst[0])
            return
        sim = self.sim
        k = len(lst)
        sim._hidden -= k - 1
        heap = sim._heap
        batch_peak = sim._batch_peak
        idx = 0
        for arg in lst:
            if idx:
                depth = len(heap) + sim._hidden + (k - idx)
                if depth > batch_peak:
                    batch_peak = depth
            idx += 1
            fn(arg)
        sim._batch_peak = batch_peak
        sim._extra_events += k - 1

    def _deliver_batch_traced(self, rec):
        """Traced fan-out: ``net_delivered`` fires per envelope, exactly
        as the unbatched per-entry deliveries would."""
        open_batches = self._open_batches
        key = rec[0]
        if open_batches.get(key) is rec:
            del open_batches[key]
        lst = rec[1]
        fn = rec[4]
        tracer = self._tracer
        if len(lst) == 1:
            env = lst[0]
            tracer.net_delivered(env)
            fn(env)
            return
        sim = self.sim
        k = len(lst)
        sim._hidden -= k - 1
        heap = sim._heap
        batch_peak = sim._batch_peak
        idx = 0
        for env in lst:
            if idx:
                depth = len(heap) + sim._hidden + (k - idx)
                if depth > batch_peak:
                    batch_peak = depth
            idx += 1
            tracer.net_delivered(env)
            fn(env)
        sim._batch_peak = batch_peak
        sim._extra_events += k - 1

    def _send_faulted(self, src, dst, payload, size=1.0):
        """Fault injector consulted per send; tracer optional."""
        sites = self._sites
        if dst not in sites:
            raise KeyError(f"unknown destination site {dst!r}")
        if src not in sites:
            raise KeyError(f"unknown source site {src!r}")
        sim = self.sim
        now = sim._now
        envelope = Envelope(src, dst, payload, size, now)
        stats = self.stats
        stats.messages_sent += 1
        stats.data_units_sent += size
        kind = payload_kind(payload)
        per_type = stats.per_type
        per_type[kind] = per_type.get(kind, 0) + 1
        tracer = self._tracer
        latency_cache = self._latency_cache
        key = (src, dst)
        base_delay = latency_cache.get(key)
        if base_delay is None:
            base_delay = latency_cache[key] = self.topology.latency(src, dst)
        if self.bandwidth is not None:
            base_delay = base_delay + size / self.bandwidth
        faults = self.faults
        fstats = faults.stats
        if tracer is not None:
            pre_loss = fstats.dropped_loss
            pre_partition = fstats.dropped_partition
            pre_dup = fstats.duplicated
        last = self._last_deliver
        severed_by_crash = faults.severed_by_crash
        first = None
        for extra in faults.plan_delays(src, dst, now):
            deliver = now + base_delay + extra
            prev = last.get(key)
            if prev is not None and prev > deliver:
                deliver = prev
            if severed_by_crash(src, dst, now, deliver):
                fstats.dropped_crash += 1
                if tracer is not None:
                    tracer.net_dropped(envelope, "crash")
                continue
            fstats.delivered += 1
            # Clamp again against our own earlier copies (a duplicate with
            # less jitter must not overtake the first copy), then schedule
            # with the exact float the original relative call_later built.
            prev = last.get(key)
            if prev is not None and prev > deliver:
                deliver = prev
            last[key] = deliver
            sim.schedule_at(now + (deliver - now), self._deliver_impl,
                            envelope)
            if tracer is not None:
                tracer.net_scheduled(envelope)
            if first is None:
                first = deliver
        # A dropped message still reports when it *would* have arrived.
        envelope.deliver_time = first if first is not None \
            else now + base_delay
        if tracer is not None:
            for _ in range(fstats.dropped_loss - pre_loss):
                tracer.net_dropped(envelope, "loss")
            for _ in range(fstats.dropped_partition - pre_partition):
                tracer.net_dropped(envelope, "partition")
            for _ in range(fstats.duplicated - pre_dup):
                tracer.net_duplicated(envelope)
            tracer.net_send(envelope, payload_kind(payload))
        return envelope

    # -- delivery ------------------------------------------------------------

    def _deliver_plain(self, envelope):
        self._sites[envelope.dst].receive(envelope)

    def _deliver_traced(self, envelope):
        self._tracer.net_delivered(envelope)
        self._sites[envelope.dst].receive(envelope)

    def _deliver(self, envelope):
        # Back-compat alias for the pre-fast-path entry point.
        self._deliver_impl(envelope)
