"""Message transport: delivery scheduling and traffic accounting."""

from dataclasses import dataclass, field

from repro.network.message import Envelope


@dataclass
class NetworkStats:
    """Aggregate traffic counters, used to verify the paper's round-count
    arithmetic (g-2PL exchanges fewer, larger messages than s-2PL)."""

    messages_sent: int = 0
    data_units_sent: float = 0.0
    per_type: dict = field(default_factory=dict)

    def record(self, envelope):
        self.messages_sent += 1
        self.data_units_sent += envelope.size
        kind = type(envelope.payload).__name__
        self.per_type[kind] = self.per_type.get(kind, 0) + 1


class Network:
    """Delivers payloads between attached sites.

    Delivery delay = topology latency (propagation + switching) plus, when a
    finite ``bandwidth`` is configured, ``size / bandwidth`` of transmission
    time. The paper assumes infinite bandwidth (transmission negligible at
    gigabit rates); the finite setting exists for the A2 ablation.
    """

    def __init__(self, sim, topology, bandwidth=None):
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth!r}")
        self.sim = sim
        self.topology = topology
        self.bandwidth = bandwidth
        self.stats = NetworkStats()
        self._sites = {}

    def add_site(self, site):
        """Register a site; its ``site_id`` must be unique."""
        if site.site_id in self._sites:
            raise ValueError(f"duplicate site id {site.site_id!r}")
        self._sites[site.site_id] = site
        site.attach(self)
        return site

    def site(self, site_id):
        """Look up a registered site."""
        return self._sites[site_id]

    @property
    def sites(self):
        """All registered sites (read-only view)."""
        return dict(self._sites)

    def delay(self, src, dst, size=1.0):
        """Total wire delay for a message of ``size`` between two sites."""
        latency = self.topology.latency(src, dst)
        if self.bandwidth is not None:
            latency += size / self.bandwidth
        return latency

    def send(self, src, dst, payload, size=1.0):
        """Ship ``payload`` from ``src`` to ``dst``; returns the envelope.

        The destination's :meth:`Site.receive` runs after the wire delay.
        Messages between distinct pairs may overtake each other; messages on
        the same (src, dst) pair are delivered in FIFO order because the
        delay is pair-constant and the heap breaks timestamp ties in
        scheduling order.
        """
        if dst not in self._sites:
            raise KeyError(f"unknown destination site {dst!r}")
        if src not in self._sites:
            raise KeyError(f"unknown source site {src!r}")
        envelope = Envelope(src=src, dst=dst, payload=payload, size=size,
                            send_time=self.sim.now)
        envelope.deliver_time = self.sim.now + self.delay(src, dst, size)
        self.stats.record(envelope)
        self.sim.call_later(envelope.deliver_time - self.sim.now,
                            self._deliver, envelope)
        return envelope

    def _deliver(self, envelope):
        self._sites[envelope.dst].receive(envelope)
