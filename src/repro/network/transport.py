"""Message transport: delivery scheduling and traffic accounting."""

from dataclasses import dataclass, field

from repro.network.message import Envelope


def payload_kind(payload):
    """Traffic class of a payload. Reliable-channel wrappers are
    transparent: the protocol mix matters, not the framing."""
    inner = getattr(payload, "inner", None)
    return type(payload if inner is None else inner).__name__


@dataclass
class NetworkStats:
    """Aggregate traffic counters, used to verify the paper's round-count
    arithmetic (g-2PL exchanges fewer, larger messages than s-2PL)."""

    messages_sent: int = 0
    data_units_sent: float = 0.0
    per_type: dict = field(default_factory=dict)

    def record(self, envelope):
        self.messages_sent += 1
        self.data_units_sent += envelope.size
        kind = payload_kind(envelope.payload)
        self.per_type[kind] = self.per_type.get(kind, 0) + 1


class Network:
    """Delivers payloads between attached sites.

    Delivery delay = topology latency (propagation + switching) plus, when a
    finite ``bandwidth`` is configured, ``size / bandwidth`` of transmission
    time. The paper assumes infinite bandwidth (transmission negligible at
    gigabit rates); the finite setting exists for the A2 ablation.

    An optional :class:`~repro.network.faults.FaultInjector` makes the link
    lossy: it may drop, duplicate, or extra-delay each send, and severs
    messages whose flight interval overlaps a crash window of either
    endpoint.
    """

    def __init__(self, sim, topology, bandwidth=None, faults=None):
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth!r}")
        self.sim = sim
        self.topology = topology
        self.bandwidth = bandwidth
        self.faults = faults
        self.stats = NetworkStats()
        self._sites = {}
        self._last_deliver = {}  # (src, dst) -> last scheduled delivery time

    def add_site(self, site):
        """Register a site; its ``site_id`` must be unique."""
        if site.site_id in self._sites:
            raise ValueError(f"duplicate site id {site.site_id!r}")
        self._sites[site.site_id] = site
        site.attach(self)
        return site

    def site(self, site_id):
        """Look up a registered site."""
        return self._sites[site_id]

    @property
    def sites(self):
        """All registered sites (read-only view)."""
        return dict(self._sites)

    def delay(self, src, dst, size=1.0):
        """Total wire delay for a message of ``size`` between two sites."""
        latency = self.topology.latency(src, dst)
        if self.bandwidth is not None:
            latency += size / self.bandwidth
        return latency

    def send(self, src, dst, payload, size=1.0):
        """Ship ``payload`` from ``src`` to ``dst``; returns the envelope.

        Messages between distinct pairs may overtake each other; messages on
        the same (src, dst) pair are always delivered in FIFO order: each
        computed delivery time (latency + transmission + any fault jitter)
        is clamped to the link's previous delivery time, serialising the
        link. Without the clamp a later small message would overtake an
        earlier large one whenever finite ``bandwidth`` (or jitter) makes
        the delay size-dependent.
        """
        if dst not in self._sites:
            raise KeyError(f"unknown destination site {dst!r}")
        if src not in self._sites:
            raise KeyError(f"unknown source site {src!r}")
        now = self.sim.now
        envelope = Envelope(src=src, dst=dst, payload=payload, size=size,
                            send_time=now)
        self.stats.record(envelope)
        tracer = getattr(self.sim, "tracer", None)
        base_delay = self.delay(src, dst, size)
        if self.faults is None:
            envelope.deliver_time = self._schedule_delivery(
                envelope, now + base_delay)
            if tracer is not None:
                tracer.net_scheduled(envelope)
                tracer.net_send(envelope, payload_kind(payload))
            return envelope
        fstats = self.faults.stats
        if tracer is not None:
            pre_loss = fstats.dropped_loss
            pre_partition = fstats.dropped_partition
            pre_dup = fstats.duplicated
        first = None
        for extra in self.faults.plan_delays(src, dst, now):
            deliver = self._fifo_clamp(src, dst, now + base_delay + extra)
            if self.faults.severed_by_crash(src, dst, now, deliver):
                fstats.dropped_crash += 1
                if tracer is not None:
                    tracer.net_dropped(envelope, "crash")
                continue
            fstats.delivered += 1
            deliver = self._schedule_delivery(envelope, deliver)
            if tracer is not None:
                tracer.net_scheduled(envelope)
            if first is None:
                first = deliver
        # A dropped message still reports when it *would* have arrived.
        envelope.deliver_time = first if first is not None \
            else now + base_delay
        if tracer is not None:
            for _ in range(fstats.dropped_loss - pre_loss):
                tracer.net_dropped(envelope, "loss")
            for _ in range(fstats.dropped_partition - pre_partition):
                tracer.net_dropped(envelope, "partition")
            for _ in range(fstats.duplicated - pre_dup):
                tracer.net_duplicated(envelope)
            tracer.net_send(envelope, payload_kind(payload))
        return envelope

    def _fifo_clamp(self, src, dst, deliver_time):
        last = self._last_deliver.get((src, dst))
        if last is not None and last > deliver_time:
            return last
        return deliver_time

    def _schedule_delivery(self, envelope, deliver_time):
        deliver_time = self._fifo_clamp(envelope.src, envelope.dst,
                                        deliver_time)
        self._last_deliver[(envelope.src, envelope.dst)] = deliver_time
        self.sim.call_later(deliver_time - self.sim.now,
                            self._deliver, envelope)
        return deliver_time

    def _deliver(self, envelope):
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.net_delivered(envelope)
        self._sites[envelope.dst].receive(envelope)
