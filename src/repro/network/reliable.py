"""At-least-once delivery with receiver-side dedup (exactly-once effect).

Under fault injection every protocol send is wrapped in a :class:`Reliable`
envelope carrying a per-sender sequence number; the receiver acks every
copy it sees (acks travel raw — losing one only costs a retransmission) and
hands *one* copy to the protocol, deduplicating by
``(sender, incarnation, seq)``. Unacked messages are retransmitted with
exponential backoff, capped but never abandoned: between live sites the
channel is eventually reliable, so protocol handlers stay oblivious to loss
and duplication. Messages to a crashed site are retried until its restart
(or forever at the capped interval — the bounded cost of talking to the
dead); a crashing *sender* cancels its own retransmission timers, and its
restart bumps the ``incarnation`` so recycled sequence numbers are never
confused with pre-crash traffic.
"""

from dataclasses import dataclass

from repro.sim.timers import Timer

ACK_SIZE = 0.25


@dataclass(frozen=True)
class Reliable:
    """Wrapper for a payload sent over the reliable channel."""

    inner: object
    seq: int
    incarnation: int = 0


@dataclass(frozen=True)
class ReliableAck:
    """Receiver → sender: copy ``(incarnation, seq)`` arrived."""

    seq: int
    incarnation: int = 0


class ReliableLink:
    """One site's end of the reliable channel (both sender and receiver)."""

    def __init__(self, sim, site, rto, backoff=2.0, max_interval=None):
        if rto <= 0:
            raise ValueError(f"rto must be positive, got {rto}")
        self.sim = sim
        self.site = site
        self.rto = rto
        self.backoff = backoff
        self.max_interval = max_interval if max_interval is not None \
            else 16.0 * rto
        self.incarnation = 0
        self._next_seq = 0
        self._pending = {}   # (dst, incarnation, seq) -> Timer
        self._seen = {}      # src -> set of (incarnation, seq)
        self.retransmissions = 0
        self.duplicates_suppressed = 0

    # -- sending -------------------------------------------------------------

    def send(self, dst, payload, size=1.0):
        """Send ``payload`` with retransmission until acked."""
        seq = self._next_seq
        self._next_seq += 1
        wrapped = Reliable(inner=payload, seq=seq,
                           incarnation=self.incarnation)
        self._transmit((dst, self.incarnation, seq), dst, wrapped, size, 0)

    def _raw_send(self, dst, payload, size):
        # Bypass the site's (reliable) send override: straight to the wire.
        self.site.network.send(self.site.site_id, dst, payload, size=size)

    def _transmit(self, key, dst, wrapped, size, attempt):
        if attempt > 0:
            if key not in self._pending:
                return  # acked (or sender crashed) while the timer was armed
            self.retransmissions += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.net_retransmit(self.site.site_id, dst)
        self._raw_send(dst, wrapped, size)
        delay = min(self.rto * self.backoff ** attempt, self.max_interval)
        self._pending[key] = Timer(self.sim, delay, self._transmit,
                                   key, dst, wrapped, size, attempt + 1)

    # -- receiving -----------------------------------------------------------

    def on_receive(self, envelope):
        """Process one delivery. Returns the payload the protocol should
        handle, or ``None`` when the envelope was channel bookkeeping (an
        ack) or a suppressed duplicate."""
        payload = envelope.payload
        if isinstance(payload, ReliableAck):
            timer = self._pending.pop(
                (envelope.src, payload.incarnation, payload.seq), None)
            if timer is not None:
                timer.cancel()
            return None
        if isinstance(payload, Reliable):
            # Ack every copy — the sender may have missed the previous ack.
            self._raw_send(envelope.src,
                           ReliableAck(seq=payload.seq,
                                       incarnation=payload.incarnation),
                           ACK_SIZE)
            seen = self._seen.setdefault(envelope.src, set())
            tag = (payload.incarnation, payload.seq)
            if tag in seen:
                self.duplicates_suppressed += 1
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.net_dup_suppressed(self.site.site_id,
                                              envelope.src)
                return None
            seen.add(tag)
            return payload.inner
        return payload  # raw traffic passes through untouched

    # -- crash lifecycle -----------------------------------------------------

    def crash(self):
        """Fail-stop: forget all channel state; stop retransmitting."""
        for timer in self._pending.values():
            timer.cancel()
        self._pending.clear()
        self._seen.clear()

    def restart(self):
        """Come back with a fresh incarnation so recycled sequence numbers
        are distinguishable from pre-crash ones."""
        self.incarnation += 1
        self._next_seq = 0
