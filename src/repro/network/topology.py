"""Sites and latency topologies."""


class Site:
    """A network endpoint that can receive messages.

    Subclasses (the data server, client sites) override :meth:`receive`.
    A site learns its identity and transport when attached to a
    :class:`~repro.network.transport.Network`.
    """

    def __init__(self, site_id):
        self.site_id = site_id
        self.network = None

    def attach(self, network):
        """Called by the network when the site is registered."""
        self.network = network

    def send(self, dst, payload, size=1.0):
        """Convenience wrapper around ``network.send`` from this site."""
        if self.network is None:
            raise RuntimeError(f"site {self.site_id} is not attached to a network")
        return self.network.send(self.site_id, dst, payload, size=size)

    def receive(self, envelope):
        """Handle a delivered envelope. Subclasses must override."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} id={self.site_id}>"


class UniformTopology:
    """The paper's model: one latency between every pair, both directions."""

    def __init__(self, latency):
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self.base_latency = latency

    def latency(self, src, dst):
        """Propagation + switching delay from ``src`` to ``dst``."""
        if src == dst:
            return 0.0
        return self.base_latency

    def __repr__(self):
        return f"UniformTopology(latency={self.base_latency})"


class RegionTopology:
    """Geo-distributed deployments: sites grouped into regions.

    Two latency tiers, modeled on the CockroachDB multi-region worked
    examples (NYC/SF): sites in the same region are one LAN hop apart
    (``intra_latency``, ~1 unit), sites in different regions pay the WAN
    round (``inter_latency``, ~100-750 units). ``region_of`` maps a site
    id to its region index; sites absent from the map are treated as
    being in their own private region (always inter-region).
    """

    def __init__(self, region_of, intra_latency=1.0, inter_latency=100.0):
        if intra_latency < 0:
            raise ValueError(f"negative intra-region latency {intra_latency!r}")
        if inter_latency < 0:
            raise ValueError(f"negative inter-region latency {inter_latency!r}")
        self.region_of = dict(region_of)
        self.intra_latency = intra_latency
        self.inter_latency = inter_latency

    def latency(self, src, dst):
        if src == dst:
            return 0.0
        src_region = self.region_of.get(src)
        dst_region = self.region_of.get(dst)
        if src_region is not None and src_region == dst_region:
            return self.intra_latency
        return self.inter_latency

    def __repr__(self):
        n_regions = len(set(self.region_of.values()))
        return (f"RegionTopology({len(self.region_of)} sites, "
                f"{n_regions} regions, intra={self.intra_latency}, "
                f"inter={self.inter_latency})")


class MatrixTopology:
    """General per-pair latencies, e.g. clustered clients far from the server.

    ``latencies`` maps ``(src, dst)`` to a delay; missing reverse pairs fall
    back to the forward entry (symmetric by default); otherwise ``default``
    applies.
    """

    def __init__(self, latencies, default=0.0):
        for pair, value in latencies.items():
            if value < 0:
                raise ValueError(f"negative latency {value!r} for pair {pair}")
        if default < 0:
            raise ValueError(f"negative default latency {default!r}")
        self._latencies = dict(latencies)
        self.default = default

    def latency(self, src, dst):
        if src == dst:
            return 0.0
        value = self._latencies.get((src, dst))
        if value is None:
            value = self._latencies.get((dst, src), self.default)
        return value

    def __repr__(self):
        return f"MatrixTopology({len(self._latencies)} pairs, default={self.default})"
