"""Deterministic, seeded fault injection for the network layer.

The paper assumes a perfect network; real WANs lose, duplicate, and delay
messages, and client sites fail. This module adds those behaviours as a
*replayable* layer on :meth:`Network.send`: every decision (drop? duplicate?
how much extra jitter?) is drawn from named :class:`~repro.sim.rng.RandomStreams`
derived from the run seed, so a (seed, fault spec) pair always produces the
same trajectory — faulted runs remain bit-identical across process counts
and reruns, exactly like fault-free ones.

Fault classes:

* **loss** — each scheduled delivery is independently dropped with
  probability ``message_loss``.
* **duplication** — with probability ``duplicate_probability`` a second
  copy of the message is scheduled (itself subject to loss and jitter).
* **extra jitter** — each delivered copy is delayed by an extra
  U(0, ``extra_jitter``); the transport's per-link FIFO clamp still keeps
  same-pair deliveries in send order (link serialisation).
* **partitions** — during a :class:`PartitionWindow`, messages to or from
  the listed sites are dropped at send time.
* **crashes** — a :class:`ClientCrash` fail-stops a client site over
  ``[at, restart_at)``; any message whose flight interval overlaps a crash
  window of its source or destination is dropped (in-flight traffic is
  severed in both directions). Crash windows are static, so the transport
  and the server-side failure detector agree by construction.

Protocol-level recovery (retry/ack channels, s-2PL lock sweeping, g-2PL
chain repair) lives with the protocols; this module only decides message
fates and answers ``is_crashed`` queries.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PartitionWindow:
    """Sites in ``sites`` are unreachable during ``[start, end)``."""

    start: float
    end: float
    sites: tuple = ()

    def __post_init__(self):
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"partition window needs 0 <= start < end, got "
                f"[{self.start}, {self.end})")
        if not self.sites:
            raise ValueError("partition window isolates no sites")

    def severs(self, src, dst, now):
        if not self.start <= now < self.end:
            return False
        return src in self.sites or dst in self.sites


@dataclass(frozen=True)
class ClientCrash:
    """Fail-stop of ``client_id`` at ``at``; ``restart_at=None`` means the
    site never comes back within the run."""

    client_id: int
    at: float
    restart_at: float = None

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError(
                f"restart_at {self.restart_at} must follow crash at {self.at}")

    @property
    def down_until(self):
        return float("inf") if self.restart_at is None else self.restart_at


@dataclass(frozen=True)
class FaultSpec:
    """Everything the fault layer may do to one run.

    The spec is a frozen, picklable value object carried inside
    :class:`~repro.core.config.SimulationConfig`, so faulted sweeps ride the
    parallel execution engine unchanged and keep its bit-identical
    ``jobs=1`` / ``jobs=N`` guarantee.

    Recovery knobs default to ``None`` = derived from the network latency
    at run time (see :func:`derive_recovery_times`).
    """

    message_loss: float = 0.0
    duplicate_probability: float = 0.0
    extra_jitter: float = 0.0
    partitions: tuple = ()      # PartitionWindow, ...
    crashes: tuple = ()         # ClientCrash, ...
    retry_timeout: float = None       # reliable-channel RTO
    retry_backoff: float = 2.0        # exponential backoff factor
    max_retry_interval: float = None  # backoff cap
    chain_timeout: float = None       # g-2PL stalled-chain watchdog
    sweep_interval: float = None      # s-2PL crashed-client lock sweep

    def __post_init__(self):
        for name in ("message_loss", "duplicate_probability"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p}")
        if self.extra_jitter < 0:
            raise ValueError(f"negative extra_jitter {self.extra_jitter}")
        if self.retry_backoff < 1.0:
            raise ValueError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}")
        for name in ("retry_timeout", "max_retry_interval", "chain_timeout",
                     "sweep_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def perturbs_messages(self):
        return bool(self.message_loss or self.duplicate_probability
                    or self.extra_jitter or self.partitions or self.crashes)

    @classmethod
    def parse(cls, text):
        """Build a spec from the CLI syntax, e.g.::

            loss=0.05,dup=0.01,jitter=50,crash=3@10000:20000,part=5000:6000:1+2

        ``crash=CLIENT@AT[:RESTART]`` (no restart = down for good);
        ``part=START:END:SITE[+SITE...]``. Repeat ``crash=``/``part=`` for
        multiple windows.
        """
        if isinstance(text, cls):
            return text
        kwargs = {}
        crashes = []
        partitions = []
        for part in str(text).split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad fault clause {part!r} (need key=value)")
            key, _, value = part.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "loss":
                kwargs["message_loss"] = float(value)
            elif key == "dup":
                kwargs["duplicate_probability"] = float(value)
            elif key == "jitter":
                kwargs["extra_jitter"] = float(value)
            elif key == "crash":
                who, _, when = value.partition("@")
                if not when:
                    raise ValueError(
                        f"crash clause {value!r} needs CLIENT@AT[:RESTART]")
                times = when.split(":")
                crashes.append(ClientCrash(
                    client_id=int(who), at=float(times[0]),
                    restart_at=float(times[1]) if len(times) > 1 else None))
            elif key == "part":
                fields = value.split(":")
                if len(fields) != 3:
                    raise ValueError(
                        f"part clause {value!r} needs START:END:SITE[+SITE..]")
                partitions.append(PartitionWindow(
                    start=float(fields[0]), end=float(fields[1]),
                    sites=tuple(int(s) for s in fields[2].split("+"))))
            elif key in ("rto", "retry_timeout"):
                kwargs["retry_timeout"] = float(value)
            elif key in ("backoff", "retry_backoff"):
                kwargs["retry_backoff"] = float(value)
            elif key == "chain_timeout":
                kwargs["chain_timeout"] = float(value)
            elif key == "sweep_interval":
                kwargs["sweep_interval"] = float(value)
            else:
                raise ValueError(f"unknown fault key {key!r}")
        return cls(crashes=tuple(crashes), partitions=tuple(partitions),
                   **kwargs)


def derive_recovery_times(spec, network_latency):
    """Resolve the spec's ``None`` recovery knobs against the run's latency.

    Returns ``(rto, max_retry_interval, chain_timeout, sweep_interval)``.
    The RTO must exceed a round trip plus worst-case jitter or every message
    would be retransmitted; the chain watchdog must outlast an entire
    forward-list traversal or it would fire on healthy chains (firing early
    is safe — repair only acts when a crashed member is found — but noisy).
    """
    round_trip = 2.0 * (network_latency + spec.extra_jitter)
    rto = spec.retry_timeout if spec.retry_timeout is not None \
        else 1.25 * round_trip + 1.0
    max_interval = spec.max_retry_interval \
        if spec.max_retry_interval is not None else 16.0 * rto
    chain_timeout = spec.chain_timeout if spec.chain_timeout is not None \
        else 10.0 * (round_trip + 10.0)
    sweep = spec.sweep_interval if spec.sweep_interval is not None \
        else 2.0 * rto
    return rto, max_interval, chain_timeout, sweep


@dataclass
class FaultStats:
    """What the injector actually did to one run."""

    delivered: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_crash: int = 0
    duplicated: int = 0

    def as_dict(self):
        return {f"faults_{key}": value
                for key, value in vars(self).items()}


class FaultInjector:
    """Per-run fault decision engine, consulted by :meth:`Network.send`.

    All randomness comes from streams of the supplied
    :class:`~repro.sim.rng.RandomStreams` namespace (the runner passes
    ``streams.spawn("faults")``), so fault decisions never perturb the
    workload's streams and vice versa.
    """

    def __init__(self, spec, streams):
        self.spec = spec
        # Bound C draws: ``Random.random`` is a C method, so binding it once
        # and calling it directly is the cheapest per-decision draw CPython
        # offers. (A BufferedStream wrapper was benchmarked here and *lost*:
        # its Python-level random() costs more than the C call it batches.
        # The sequences are identical either way, so this is purely a speed
        # choice.)
        self._loss_random = streams.stream("loss").random
        self._dup_random = streams.stream("dup").random
        self._jitter_random = streams.stream("jitter").random
        self.stats = FaultStats()
        # site_id -> list of (at, down_until), static for the whole run.
        self._crash_windows = {}
        for crash in spec.crashes:
            self._crash_windows.setdefault(crash.client_id, []).append(
                (crash.at, crash.down_until))

    # -- send-time decisions -------------------------------------------------

    def plan_delays(self, src, dst, now):
        """Decide the fate of one send: a list of extra delays, one per copy
        to schedule (empty = the message vanishes). Loss and jitter are drawn
        independently per copy, so a duplicate may survive its original's
        loss and vice versa."""
        spec = self.spec
        stats = self.stats
        for window in spec.partitions:
            if window.severs(src, dst, now):
                stats.dropped_partition += 1
                return []
        copies = 1
        dup_probability = spec.duplicate_probability
        if dup_probability and self._dup_random() < dup_probability:
            copies = 2
            stats.duplicated += 1
        delays = []
        loss = spec.message_loss
        jitter = spec.extra_jitter
        loss_random = self._loss_random
        for _ in range(copies):
            if loss and loss_random() < loss:
                stats.dropped_loss += 1
                continue
            # jitter * random() is bit-identical to uniform(0, jitter):
            # Random.uniform computes 0.0 + (jitter - 0.0) * random(), and
            # both additions/subtractions with 0.0 are exact for jitter > 0.
            delays.append(jitter * self._jitter_random() if jitter else 0.0)
        return delays

    def severed_by_crash(self, src, dst, send_time, deliver_time):
        """True if the flight interval overlaps a crash window of either
        endpoint: messages in flight when a site dies are lost, and a dead
        site neither sends nor receives."""
        for site in (src, dst):
            for at, until in self._crash_windows.get(site, ()):
                if deliver_time >= at and send_time < until:
                    return True
        return False

    # -- failure-detector API ------------------------------------------------

    def is_crashed(self, site_id, now):
        """The (perfect, window-based) failure detector the recovery logic
        consults; deterministic because crash windows are fixed up front."""
        for at, until in self._crash_windows.get(site_id, ()):
            if at <= now < until:
                return True
        return False

    def crashed_during(self, site_id, start, end):
        """True when ``site_id`` has a crash window overlapping
        ``(start, end)`` — a site that crashed *and restarted* inside the
        interval forgot everything it held, so recovery must treat it the
        same as one that is still down."""
        for at, until in self._crash_windows.get(site_id, ()):
            if at < end and until > start:
                return True
        return False

    def crash_sites(self):
        """Site ids with at least one crash window."""
        return set(self._crash_windows)
