"""Table 2 of the paper: networking environments and their latencies.

Latencies are in simulation time units. The paper's example conversion:
1 unit = 0.5 ms puts the WAN values at 50–500 ms round numbers, realistic
for wide-area and satellite links of the era.
"""

import enum


class NetworkEnvironment(enum.Enum):
    """The six environments simulated in the paper (Table 2)."""

    SS_LAN = ("single-segment LAN", 1.0)
    MS_LAN = ("multi-segment LAN", 50.0)
    CAN = ("campus area network", 100.0)
    MAN = ("metropolitan area network", 250.0)
    S_WAN = ("small wide area network", 500.0)
    L_WAN = ("large wide area network", 750.0)

    def __init__(self, description, latency):
        self.description = description
        self.latency = latency

    def __str__(self):
        return f"{self.name} ({self.description}, latency {self.latency:g})"


#: Table 2 rows in the paper's order.
TABLE2_ENVIRONMENTS = tuple(NetworkEnvironment)

#: The latency sweep used for the "response time vs latency" figures.
LATENCY_SWEEP = tuple(env.latency for env in TABLE2_ENVIRONMENTS)


def environment_for_latency(latency):
    """Return the Table 2 environment with this latency, or None."""
    for env in TABLE2_ENVIRONMENTS:
        if env.latency == latency:
            return env
    return None
