"""repro — reproduction of Banerjee & Chrysanthis, "Network Latency
Optimizations in Distributed Database Systems" (ICDE 1998).

The package implements, from scratch, the complete system the paper
evaluates: a discrete-event simulator of a data-shipping client-server
database over a uniform-latency network, the server-based strict 2PL
baseline (s-2PL), and the group 2PL protocol (g-2PL: lock grouping via
forward lists and collection windows, precedence-graph deadlock avoidance,
and the MR1W multiple-readers/one-writer optimization), plus the paper's
future-work extensions (read-only forward-list expansion, forward-list
ordering disciplines, caching 2PL).

Quickstart::

    from repro import SimulationConfig, compare_protocols

    config = SimulationConfig(n_clients=50, read_probability=0.25,
                              network_latency=500.0,
                              total_transactions=1000,
                              warmup_transactions=100)
    results = compare_protocols(config, ("s2pl", "g2pl"), replications=2)
    for name, result in results.items():
        print(name, result.summary())
"""

from repro.core.config import Fidelity, SimulationConfig
from repro.core.parallel import (
    CellError,
    SimulationCell,
    replication_seed,
    resolve_jobs,
    run_cells,
)
from repro.core.runner import (
    ReplicatedResult,
    SimulationResult,
    compare_protocols,
    improvement_percentage,
    run_replications,
    run_simulation,
)
from repro.core.worked_example import run_worked_example
from repro.network.presets import NetworkEnvironment, TABLE2_ENVIRONMENTS
from repro.protocols.registry import available_protocols

__version__ = "1.0.0"

__all__ = [
    "CellError",
    "Fidelity",
    "NetworkEnvironment",
    "ReplicatedResult",
    "SimulationCell",
    "SimulationConfig",
    "SimulationResult",
    "TABLE2_ENVIRONMENTS",
    "available_protocols",
    "compare_protocols",
    "improvement_percentage",
    "replication_seed",
    "resolve_jobs",
    "run_cells",
    "run_replications",
    "run_simulation",
    "run_worked_example",
]
