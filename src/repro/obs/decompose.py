"""End-to-end latency decomposition and the sim-vs-live divergence report.

:func:`decompose_records` folds traced per-transaction records into a
:class:`Decomposition` — per-phase totals, means, fractions, and
percentiles (streaming-compatible via
:class:`~repro.obs.spans.PhaseAccumulator`) — with the span-sum invariant
checked on every record.

:func:`compare` pairs two decompositions of the *same scenario* (the
simulator's prediction and a live run) and attributes their mean-response
gap phase by phase: PR 5 measured an opaque 2.3–2.6% sim-vs-live delta;
the report shows which phases carry it (the shaped network phase matches
the simulator almost exactly — the sender charges the predicted wire time
in both worlds — while the residual concentrates in the live-only
``overhead`` phase plus scheduling-inflated waits).

:func:`sim_vs_live` is the turnkey pairing: run the reference simulation
and the live run for one :class:`~repro.live.scenario.ScenarioSpec`,
restrict both to the transactions committed and measured in *both*
worlds, and compare.
"""

from dataclasses import dataclass, field

from repro.obs.spans import (PHASES, PhaseAccumulator, check_record,
                             phase_view)


@dataclass
class Decomposition:
    """Per-phase latency budget of one set of traced transactions."""

    label: str
    n_txns: int
    response_mean: float
    response_total: float
    #: phase -> {"total", "mean", "fraction", "p50", "p95"}
    phases: dict
    #: invariant violations found while folding (empty = clean)
    violations: list = field(default_factory=list)

    def mean(self, name):
        return self.phases[name]["mean"]

    def fraction(self, name):
        return self.phases[name]["fraction"]

    def describe(self):
        lines = [
            f"decomposition [{self.label}]: {self.n_txns} txns, "
            f"mean response {self.response_mean:.2f}",
            f"  {'phase':<18} {'mean':>10} {'share':>7} "
            f"{'p50':>10} {'p95':>10}",
        ]
        for name in PHASES:
            cell = self.phases[name]
            lines.append(
                f"  {name:<18} {cell['mean']:>10.2f} "
                f"{100.0 * cell['fraction']:>6.1f}% "
                f"{cell['p50']:>10.2f} {cell['p95']:>10.2f}")
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS: {len(self.violations)} "
                         f"(first: {self.violations[0]})")
        return "\n".join(lines)


def decompose_records(records, label="run", threshold=None,
                      reservoir_capacity=8192, seed=97):
    """Fold per-transaction records into a :class:`Decomposition`.

    ``records`` is an iterable of record dicts (or a mapping txn -> record);
    only measured records are folded. Every record is checked against the
    span-sum/non-negativity invariant; violations are collected, not
    raised — the caller decides whether a dirty decomposition is fatal.
    """
    if hasattr(records, "values"):
        records = records.values()
    acc_kwargs = {"reservoir_capacity": reservoir_capacity, "seed": seed}
    if threshold is not None:
        acc_kwargs["threshold"] = threshold
    acc = PhaseAccumulator(**acc_kwargs)
    violations = []
    for record in records:
        if not record.get("measured", True):
            continue
        violations.extend(check_record(record))
        acc.add(record)
    phases = {}
    for name in PHASES:
        phases[name] = {
            "total": acc.totals[name],
            "mean": acc.mean(name) if acc.count else float("nan"),
            "fraction": acc.fraction(name),
            "p50": acc.percentile(name, 50.0),
            "p95": acc.percentile(name, 95.0),
        }
    return Decomposition(
        label=label, n_txns=acc.count,
        response_mean=(acc.response.mean if acc.count else float("nan")),
        response_total=acc.response_total,
        phases=phases, violations=violations)


def decompose_trace(trace, label="sim", **kwargs):
    """Decompose a :class:`~repro.obs.tracer.TraceData` (committed,
    measured transactions — the calibration population)."""
    records = [r for r in trace.txns if r["committed"] and r["measured"]]
    return decompose_records(records, label=label, **kwargs)


@dataclass
class PhaseDelta:
    """One phase's sim-vs-live divergence."""

    phase: str
    sim_mean: float
    live_mean: float

    @property
    def delta(self):
        return self.live_mean - self.sim_mean

    @property
    def relative(self):
        """Live-vs-sim relative error for this phase (NaN when the sim
        phase is empty — nothing to be relative to)."""
        if self.sim_mean == 0.0:
            return float("nan")
        return self.delta / self.sim_mean


@dataclass
class DivergenceReport:
    """Sim-vs-live response gap, attributed phase by phase."""

    sim: Decomposition
    live: Decomposition
    deltas: dict            # phase -> PhaseDelta

    @property
    def response_gap(self):
        """Mean live response minus mean sim response."""
        return self.live.response_mean - self.sim.response_mean

    @property
    def response_gap_relative(self):
        if self.sim.response_mean == 0.0:
            return float("nan")
        return self.response_gap / self.sim.response_mean

    def attribution(self):
        """Each phase's share of the response gap (signed; sums to 1.0
        when the gap is nonzero)."""
        gap = self.response_gap
        if gap == 0.0:
            return {name: 0.0 for name in PHASES}
        return {name: self.deltas[name].delta / gap for name in PHASES}

    @property
    def network_agreement(self):
        """|relative error| of the shaped network phase — the acceptance
        gate: live wire time must track the simulator's prediction."""
        return abs(self.deltas["network"].relative)

    def describe(self):
        gap = self.response_gap
        lines = [
            f"sim vs live [{self.sim.label} / {self.live.label}]: "
            f"{self.sim.n_txns} / {self.live.n_txns} txns",
            f"  mean response: sim {self.sim.response_mean:.2f}, "
            f"live {self.live.response_mean:.2f}  "
            f"(gap {gap:+.2f} = {100.0 * self.response_gap_relative:+.2f}%)",
            f"  {'phase':<18} {'sim mean':>10} {'live mean':>10} "
            f"{'delta':>9} {'of gap':>8}",
        ]
        shares = self.attribution()
        for name in PHASES:
            d = self.deltas[name]
            share = shares[name]
            lines.append(
                f"  {name:<18} {d.sim_mean:>10.3f} {d.live_mean:>10.3f} "
                f"{d.delta:>+9.3f} {100.0 * share:>7.1f}%")
        lines.append(
            f"  network phase agreement: "
            f"{100.0 * self.network_agreement:.2f}% relative error")
        return "\n".join(lines)


def compare(sim_decomposition, live_decomposition):
    """Pair two decompositions of the same scenario into a
    :class:`DivergenceReport`."""
    deltas = {
        name: PhaseDelta(
            phase=name,
            sim_mean=sim_decomposition.mean(name),
            live_mean=live_decomposition.mean(name))
        for name in PHASES
    }
    return DivergenceReport(sim=sim_decomposition,
                            live=live_decomposition, deltas=deltas)


def common_committed(reference, merged):
    """The per-txn record pairs committed and measured in both worlds.

    Returns ``(sim_records, live_records)`` dicts over the common txn-id
    set — the same pairing discipline the PR 5 calibration uses, so the
    divergence report and the calibration report describe one population.
    """
    sim_records = {
        record["txn"]: record for record in reference.trace.txns
        if record["committed"] and record["measured"]}
    live_records = merged.measured_committed()
    common = sorted(set(sim_records) & set(live_records))
    return ({txn: sim_records[txn] for txn in common},
            {txn: live_records[txn] for txn in common})


def sim_vs_live(spec, time_scale=None, workdir=None, timeout=None):
    """Run ``spec`` in both worlds and attribute the response-time gap.

    Returns ``(report, live_result, reference)`` — the divergence report
    over the common committed population plus both raw results for
    callers that want rounds/history checks too.
    """
    from repro.live.harness import DEFAULT_TIME_SCALE, run_live
    from repro.live.scenario import run_reference

    if time_scale is None:
        time_scale = DEFAULT_TIME_SCALE
    reference = run_reference(spec)
    live = run_live(spec, time_scale=time_scale, workdir=workdir,
                    timeout=timeout)
    sim_records, live_records = common_committed(reference, live.merged)
    report = compare(
        decompose_records(sim_records, label=f"sim:{spec.protocol}"),
        decompose_records(live_records, label=f"live:{spec.protocol}"))
    return report, live, reference
