"""Observability: structured tracing, round accounting, probes, exporters."""

from repro.obs.export import write_chrome_trace, write_jsonl, write_probes_csv
from repro.obs.probes import ProbeSampler, default_sources
from repro.obs.rounds import (
    RoundProfile,
    contended_round_profile,
    expected_rounds,
    round_table,
)
from repro.obs.schema import EVENT_SCHEMA, validate_events, validate_trace
from repro.obs.summary import TraceSummary
from repro.obs.tracer import TraceData, Tracer

__all__ = [
    "EVENT_SCHEMA",
    "ProbeSampler",
    "RoundProfile",
    "TraceData",
    "Tracer",
    "TraceSummary",
    "contended_round_profile",
    "default_sources",
    "expected_rounds",
    "round_table",
    "validate_events",
    "validate_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_probes_csv",
]
