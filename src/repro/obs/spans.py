"""Per-transaction phase spans and the decomposition exactness invariant.

A traced transaction record (see :meth:`repro.obs.tracer.Tracer._txn_record`)
carries additive *components* (propagation, transmission, slack,
server_queue, client_think) plus phase sub-accounts (commit_coord,
abort_resolution — wire time re-attributed from the components — and
overhead, live-only time outside them) and a residual lock_wait. This
module regroups those into a disjoint **phase view**: named spans that are
non-overlapping by construction and sum *exactly* to the measured response
time::

    response = network + server_queue + client_think
             + commit_coord + abort_resolution + overhead + lock_wait

where ``network = propagation + transmission + slack - commit_coord -
abort_resolution`` (generic wire time after carving out the flights that
belong to 2PC coordination and abort resolution).

The exactness holds as an identity over the tracer's arithmetic — this
module's checks are tripwires that catch any future charging site breaking
it (e.g. charging a flight the transaction never waited on, which drives
the lock_wait residual negative).

Aggregation is streaming-compatible: :class:`PhaseAccumulator` keeps a
Welford moment pair and a bounded reservoir per phase (the PR 7 machinery),
switching away from exact per-transaction lists above the same
``streaming_threshold`` the metrics pipeline uses.
"""

import random

from repro.stats.streaming import ReservoirSampler, Welford

#: phase names in report order; disjoint, summing exactly to response time
PHASES = ("network", "server_queue", "client_think", "commit_coord",
          "abort_resolution", "overhead", "lock_wait")

#: Chrome trace-viewer reserved color names per phase (Perfetto palette)
PHASE_COLORS = {
    "network": "thread_state_running",          # green
    "server_queue": "thread_state_runnable",    # blue-grey
    "client_think": "rail_idle",                # pale
    "commit_coord": "thread_state_iowait",      # orange
    "abort_resolution": "terrible",             # red
    "overhead": "bad",                          # amber
    "lock_wait": "grey",
}

#: default tolerance for the sum invariant: absolute floor plus a
#: relative term for long responses (float addition error only — every
#: phase is derived from the same charges the response was measured with)
ABS_TOL = 1e-6
REL_TOL = 1e-9

#: txns below this count keep exact per-phase lists; above it the
#: accumulator drops to reservoir + Welford (matches config default)
DEFAULT_STREAMING_THRESHOLD = 20_000


def tolerance(response):
    """Sum-invariant tolerance for one record."""
    return ABS_TOL + REL_TOL * abs(response)


def phase_view(record):
    """The disjoint phase spans of one transaction record.

    Tolerates records that predate the phase sub-accounts (old JSONL
    exports, synthetic fixtures) by treating missing sub-accounts as zero,
    which degrades gracefully: everything lands in ``network``.
    """
    commit = record.get("commit_coord", 0.0)
    abort = record.get("abort_resolution", 0.0)
    wire = record["propagation"] + record["transmission"] + record["slack"]
    return {
        "network": wire - commit - abort,
        "server_queue": record["server_queue"],
        "client_think": record["client_think"],
        "commit_coord": commit,
        "abort_resolution": abort,
        "overhead": record.get("overhead", 0.0),
        "lock_wait": record["lock_wait"],
    }


def sum_violation(record):
    """``None`` if the record's phases sum to its response time, else a
    human-readable violation string."""
    phases = phase_view(record)
    total = sum(phases.values())
    response = record["response"]
    if abs(total - response) > tolerance(response):
        return (f"txn {record.get('txn')}: phases sum to {total!r} but "
                f"response is {response!r} (delta {total - response:+.3e})")
    return None


def check_record(record, strict_lock_wait=None):
    """All invariant violations for one record (empty list = clean).

    Checks: the sum invariant, and non-negativity of every phase.

    ``strict_lock_wait`` controls whether a negative lock_wait residual is
    a violation. Defaults to the record's ``committed`` flag: a committed
    transaction waited for every charged flight, so its residual must be
    ≥ 0; an aborted transaction's AbortNotice flight can overlap think
    time (the victim learns of the abort at its next operation boundary),
    legitimately pushing the residual below zero.
    """
    violations = []
    bad_sum = sum_violation(record)
    if bad_sum is not None:
        violations.append(bad_sum)
    if strict_lock_wait is None:
        strict_lock_wait = bool(record.get("committed"))
    tol = tolerance(record["response"])
    for name, value in phase_view(record).items():
        if name == "lock_wait" and not strict_lock_wait:
            continue
        if value < -tol:
            violations.append(
                f"txn {record.get('txn')}: phase {name} is negative "
                f"({value!r})")
    return violations


def check_records(records, max_errors=20):
    """Invariant violations across many records, capped at ``max_errors``."""
    violations = []
    for record in records:
        if not record.get("measured", True):
            continue
        violations.extend(check_record(record))
        if len(violations) >= max_errors:
            violations.append("... (further violations suppressed)")
            break
    return violations


class PhaseAccumulator:
    """Streaming-compatible per-phase aggregate over transaction records.

    Below ``threshold`` observed records, exact per-phase value lists are
    kept (percentiles are exact). At the threshold the lists are folded
    into per-phase :class:`ReservoirSampler`\\ s (seeded deterministically,
    never touching simulation RNG streams) and memory stays bounded — the
    same auto-selection contract as PR 7's streaming metrics.
    """

    def __init__(self, threshold=DEFAULT_STREAMING_THRESHOLD,
                 reservoir_capacity=8192, seed=97):
        self.threshold = threshold
        self.reservoir_capacity = reservoir_capacity
        self.seed = seed
        self.count = 0
        self.response = Welford()
        self.welford = {name: Welford() for name in PHASES}
        self.exact = {name: [] for name in PHASES}  # None once streaming
        self.reservoirs = None
        self.totals = {name: 0.0 for name in PHASES}
        self.response_total = 0.0

    @property
    def streaming(self):
        return self.reservoirs is not None

    def _spill(self):
        rng = random.Random(self.seed)
        self.reservoirs = {
            name: ReservoirSampler(rng, capacity=self.reservoir_capacity)
            for name in PHASES}
        for name, values in self.exact.items():
            sampler = self.reservoirs[name]
            for value in values:
                sampler.add(value)
        self.exact = None

    def add(self, record):
        phases = phase_view(record)
        self.count += 1
        self.response.add(record["response"])
        self.response_total += record["response"]
        for name, value in phases.items():
            self.totals[name] += value
            self.welford[name].add(value)
            if self.exact is not None:
                self.exact[name].append(value)
            else:
                self.reservoirs[name].add(value)
        if self.exact is not None and self.count >= self.threshold:
            self._spill()

    def mean(self, name):
        return self.welford[name].mean

    def std(self, name):
        return self.welford[name].std

    def fraction(self, name):
        """Phase share of total response time."""
        if self.response_total <= 0:
            return float("nan")
        return self.totals[name] / self.response_total

    def percentile(self, name, p):
        """Linearly-interpolated percentile; exact below the threshold,
        reservoir-estimated above (same interpolation either way)."""
        if self.exact is not None:
            values = sorted(self.exact[name])
            if not values:
                return float("nan")
            if len(values) == 1:
                return values[0]
            rank = (p / 100.0) * (len(values) - 1)
            low = int(rank)
            high = min(low + 1, len(values) - 1)
            fraction = rank - low
            return values[low] + (values[high] - values[low]) * fraction
        return self.reservoirs[name].percentile(p)
