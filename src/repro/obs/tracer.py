"""Structured tracing for the simulator stack.

The tracer is attached to the :class:`~repro.sim.engine.Simulator` as
``sim.tracer``; every instrumented call site guards with ``tracer is not
None``, so a run without tracing executes exactly the pre-instrumentation
code path (zero overhead when disabled, and — because the tracer never
draws random numbers and only ever *adds* heap entries for probes — a run
with tracing produces bit-identical :class:`RunMetrics`).

Three kinds of records are captured:

* **events** — ``(sim_time, kind, fields)`` tuples for every structured
  event (message sends/drops, lock grants, FL dispatches, watchdog
  repairs, transaction lifecycle, ...); see :mod:`repro.obs.schema`.
* **transactions** — per-transaction latency-round accounting: the count
  of *sequential message rounds* a transaction's busy period contributed
  (the paper's 3m vs 2m+1 arithmetic) and a decomposition of its response
  time into propagation, transmission, server-queueing, client-processing
  (think), delivery slack (jitter / FIFO clamping), and residual lock
  wait.
* **probes** — periodic gauge samples recorded by
  :class:`~repro.obs.probes.ProbeSampler`.

Round-charging scheme (validates the paper's arithmetic exactly on the
worked-example scenario):

* ``request``  — charged when a client sends a LockRequest.
* ``grant``    — charged when the *server* ships data (s-2PL DataShip,
  g-2PL chain-head dispatch or reader graft). Grants that a forwarding
  client performs are not grants but handoffs:
* ``handoff``  — charged to the *forwarding* transaction when its release
  doubles as the successor's grant (the g-2PL merged message).
* ``release``  — charged to the releasing transaction when the release
  travels alone (s-2PL commit/abort release, g-2PL return-to-server).
* ``grant_concurrent`` — the MR1W co-ship; counted but excluded from the
  sequential total (it overlaps the read group's rounds).
* ``commit`` / ``commit_ack`` — the fault-mode ChainCommit round trip.
* ``prepare`` / ``vote`` / ``decide`` — the cross-shard 2PC phases
  (sharded runs): one sequential prepare fan-out, one sequential vote
  fan-in (the slowest participant; the others count as
  ``vote_concurrent``), one sequential decision fan-out. Fault-mode
  decision acks mirror votes as ``commit_ack`` / ``commit_ack_concurrent``.
"""

from dataclasses import dataclass

from repro.obs.summary import NON_SEQUENTIAL_ROUND_KINDS, TraceSummary


@dataclass
class TraceData:
    """Everything one traced run captured (plain data, picklable)."""

    events: list    # [(time, kind, {field: value}), ...]
    txns: list      # [per-transaction record dict, ...]
    probes: list    # [(time, series_name, value), ...]
    summary: TraceSummary


class _TxnAcc:
    """Accumulating per-transaction charges; finalised into a record."""

    __slots__ = ("txn_id", "client_id", "begin", "rounds", "shard_rounds",
                 "propagation", "transmission", "slack", "server_queue",
                 "client_think", "commit_wire", "abort_wire", "overhead")

    def __init__(self, txn_id):
        self.txn_id = txn_id
        self.client_id = None
        self.begin = None
        self.rounds = {}
        self.shard_rounds = None  # {shard: {kind: count}} (sharded runs)
        self.propagation = 0.0
        self.transmission = 0.0
        self.slack = 0.0
        self.server_queue = 0.0
        self.client_think = 0.0
        # phase sub-accounts: wire time already counted in the components
        # above but attributable to a named phase (2PC coordination,
        # deadlock/abort resolution), plus live-only process overhead
        # (receiver-side excess over the shaped delivery time) which is
        # *not* part of the wire components.
        self.commit_wire = 0.0
        self.abort_wire = 0.0
        self.overhead = 0.0


class Tracer:
    """Collects structured events and per-transaction accounting."""

    def __init__(self, sim, engine_events=False):
        self.sim = sim
        self.engine_events = engine_events
        self.network = None
        self.events = []
        self.probes = []
        self._live = {}   # txn_id -> _TxnAcc
        self._done = {}   # txn_id -> (acc, meta dict), insertion-ordered
        self._unfinished = []  # records finalised by close(), never begun
        # run-local message ids: the Envelope counter is module-global (not
        # reset per run), so traces keyed on it would differ between worker
        # processes; the tracer numbers messages itself.
        self._msg_ids = {}
        self._next_msg_id = 0
        # network gauges / counters
        self.in_flight = {}         # (src, dst) -> currently-flying copies
        self.in_flight_total = 0
        self.messages_sent = 0
        self.msgs_by_kind = {}
        self.drops_by_cause = {}
        self.duplicates_injected = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0

    def bind_network(self, network):
        """Attach the network whose topology/bandwidth price the wires.

        Also re-selects the network's send fast path: the transport binds
        its per-run send implementation once, so a tracer attached after
        network construction must trigger a re-selection."""
        self.network = network
        network.refresh_fast_path()

    # -- generic events ------------------------------------------------------

    def emit(self, kind, /, **fields):
        self.events.append((self.sim.now, kind, fields))

    # -- engine --------------------------------------------------------------

    def engine_dispatch(self, when, depth):
        """Per-heap-entry event; only wired up when ``engine_events``."""
        self.events.append((when, "engine.dispatch", {"depth": depth}))

    # -- network -------------------------------------------------------------

    def _msg_id(self, envelope):
        mid = self._msg_ids.get(envelope.envelope_id)
        if mid is None:
            self._next_msg_id += 1
            mid = self._msg_ids[envelope.envelope_id] = self._next_msg_id
        return mid

    def net_send(self, envelope, kind):
        self.messages_sent += 1
        self.msgs_by_kind[kind] = self.msgs_by_kind.get(kind, 0) + 1
        self.emit("msg.send", id=self._msg_id(envelope), src=envelope.src,
                  dst=envelope.dst, kind=kind, size=envelope.size,
                  deliver=envelope.deliver_time)

    def net_scheduled(self, envelope):
        link = (envelope.src, envelope.dst)
        self.in_flight[link] = self.in_flight.get(link, 0) + 1
        self.in_flight_total += 1

    def net_delivered(self, envelope):
        link = (envelope.src, envelope.dst)
        flying = self.in_flight.get(link, 0)
        if flying > 0:
            self.in_flight[link] = flying - 1
            self.in_flight_total -= 1
        self.emit("msg.deliver", id=self._msg_id(envelope),
                  src=envelope.src, dst=envelope.dst)

    def net_dropped(self, envelope, cause):
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1
        self.emit("msg.drop", id=self._msg_id(envelope), src=envelope.src,
                  dst=envelope.dst, cause=cause)

    def net_duplicated(self, envelope):
        self.duplicates_injected += 1
        self.emit("msg.dup", id=self._msg_id(envelope), src=envelope.src,
                  dst=envelope.dst)

    def net_retransmit(self, site_id, dst):
        self.retransmissions += 1
        self.emit("msg.retransmit", src=site_id, dst=dst)

    def net_dup_suppressed(self, site_id, src):
        self.duplicates_suppressed += 1
        self.emit("msg.dup_suppressed", site=site_id, src=src)

    # -- per-transaction accounting ------------------------------------------

    def _acc(self, txn_id):
        acc = self._live.get(txn_id)
        if acc is None:
            done = self._done.get(txn_id)
            if done is not None:
                # Late charge: a committed g-2PL transaction can still hand
                # an item off after its coroutine returned (MR1W gating).
                return done[0]
            acc = self._live[txn_id] = _TxnAcc(txn_id)
        return acc

    def round_charge(self, txn_id, kind, shard=None):
        """Count one message round of ``kind`` against ``txn_id``.

        ``shard`` attributes the round to a home server (sharded runs);
        unsharded charge sites pass nothing and the per-shard table stays
        empty, keeping their traces byte-identical to pre-sharding runs.
        """
        acc = self._acc(txn_id)
        rounds = acc.rounds
        rounds[kind] = rounds.get(kind, 0) + 1
        if shard is not None:
            table = acc.shard_rounds
            if table is None:
                table = acc.shard_rounds = {}
            per_shard = table.setdefault(shard, {})
            per_shard[kind] = per_shard.get(kind, 0) + 1

    def wire_charge(self, txn_id, envelope, phase=None):
        """Charge an *awaited* message's wire time to the transaction that
        blocks on its arrival. ``envelope`` may be None (under fault
        injection the reliable link owns the wire) — then only the round
        counts, the wire components are unknowable.

        ``phase`` sub-attributes the charged wire time to a named phase
        without changing the component totals: ``"commit"`` marks 2PC /
        chain-commit coordination flights, ``"abort"`` marks deadlock and
        abort-resolution flights (the victim's AbortNotice). Untagged
        charges land in the generic network phase.
        """
        if envelope is None:
            return
        acc = self._acc(txn_id)
        network = self.network
        propagation = (network.topology.latency(envelope.src, envelope.dst)
                       if network is not None else 0.0)
        transmission = (envelope.size / network.bandwidth
                        if network is not None and network.bandwidth
                        else 0.0)
        slack = (envelope.deliver_time - envelope.send_time
                 - propagation - transmission)
        acc.propagation += propagation
        acc.transmission += transmission
        if slack <= 0.0:
            slack = 0.0
        acc.slack += slack
        if phase is not None:
            wire = propagation + transmission + slack
            if phase == "commit":
                acc.commit_wire += wire
            elif phase == "abort":
                acc.abort_wire += wire

    def overhead_charge(self, txn_id, duration):
        """Charge live-only process overhead: the receiver-side excess of a
        frame's actual arrival over its shaped (sim-predicted) delivery
        time — codec, event-loop scheduling, and kernel socket time. Never
        called in simulation, so sim records keep ``overhead == 0.0``."""
        self._acc(txn_id).overhead += duration

    def think_charge(self, txn_id, duration):
        self._acc(txn_id).client_think += duration

    def queue_charge(self, txn_id, duration):
        self._acc(txn_id).server_queue += duration

    def txn_begin(self, txn):
        acc = self._acc(txn.txn_id)
        acc.client_id = txn.client_id
        acc.begin = self.sim.now
        self.emit("txn.begin", txn=txn.txn_id, client=txn.client_id)

    def txn_finished(self, outcome, measured=True):
        """Finalise a transaction from its driver-visible outcome."""
        acc = self._live.pop(outcome.txn_id, None)
        if acc is None:
            acc = _TxnAcc(outcome.txn_id)
        acc.client_id = outcome.client_id
        meta = {
            "committed": outcome.committed,
            "measured": measured,
            "start": outcome.start_time,
            "end": outcome.end_time,
            "response": outcome.response_time,
            "n_ops": outcome.n_ops,
            "abort_reason": outcome.abort_reason,
        }
        self._done[outcome.txn_id] = (acc, meta)
        self.emit("txn.end", txn=outcome.txn_id, client=outcome.client_id,
                  committed=outcome.committed,
                  response=outcome.response_time)

    def partial_records(self):
        """Accumulators of transactions this tracer never saw finish.

        In a live run every endpoint process has its own tracer, and a
        transaction's rounds are charged wherever the charging code runs:
        the server charges grants, a forwarding g-2PL client charges the
        successor's handoff wire time. Those foreign charges accumulate in
        ``_live`` and are never finalised locally — the harness merges them
        into the owning endpoint's finished record. Keys mirror
        :meth:`_txn_record` minus the outcome metadata.
        """
        return [
            {"txn": acc.txn_id, "client": acc.client_id,
             "rounds": dict(acc.rounds), "propagation": acc.propagation,
             "transmission": acc.transmission, "slack": acc.slack,
             "server_queue": acc.server_queue,
             "client_think": acc.client_think,
             "commit_coord": acc.commit_wire,
             "abort_resolution": acc.abort_wire,
             "overhead": acc.overhead}
            for acc in self._live.values()
        ]

    def close(self):
        """Finalise transactions still in flight when the run ends.

        Transactions begun via :meth:`txn_begin` but never handed to
        :meth:`txn_finished` (the run closed mid-transaction) would
        otherwise linger in ``_live`` forever: exporters silently dropped
        them and :meth:`partial_records` reported them as if they were
        foreign charges. ``close()`` converts each into a full-shaped
        record flagged ``unfinished`` (``measured=False``, so summaries
        and fingerprints of finished work are untouched) and empties
        ``_live``. Call it once, after the run loop exits and before
        :meth:`finish`; live-mode endpoints must *not* call it — their
        residual accumulators are genuine partial records that the
        harness merges across processes.
        """
        now = self.sim.now
        for acc in self._live.values():
            begin = acc.begin
            meta = {
                "committed": False,
                "measured": False,
                "unfinished": True,
                "start": begin,
                "end": now,
                "response": now - begin if begin is not None else 0.0,
                "n_ops": None,
                "abort_reason": "unfinished",
            }
            self._unfinished.append(self._txn_record(acc, meta))
        self._live.clear()
        return self._unfinished

    # -- probes --------------------------------------------------------------

    def probe(self, name, value):
        self.probes.append((self.sim.now, name, value))

    # -- finalisation --------------------------------------------------------

    def _txn_record(self, acc, meta):
        sequential = sum(count for kind, count in acc.rounds.items()
                         if kind not in NON_SEQUENTIAL_ROUND_KINDS)
        explained = (acc.propagation + acc.transmission + acc.slack
                     + acc.server_queue + acc.client_think)
        record = {
            "txn": acc.txn_id,
            "client": acc.client_id,
            "rounds": dict(acc.rounds),
            "rounds_sequential": sequential,
            "propagation": acc.propagation,
            "transmission": acc.transmission,
            "slack": acc.slack,
            "server_queue": acc.server_queue,
            "client_think": acc.client_think,
            # phase sub-accounts (see repro.obs.spans): commit_coord and
            # abort_resolution re-attribute wire time already inside the
            # components above; overhead is live-only extra time.
            "commit_coord": acc.commit_wire,
            "abort_resolution": acc.abort_wire,
            "overhead": acc.overhead,
            # residual: time blocked on other transactions' locks
            "lock_wait": meta["response"] - explained - acc.overhead,
        }
        if acc.shard_rounds:
            record["rounds_by_shard"] = {
                shard: dict(kinds)
                for shard, kinds in acc.shard_rounds.items()}
        record.update(meta)
        return record

    def finish(self, processed_events=0, peak_heap_depth=0):
        """Freeze everything captured into a picklable :class:`TraceData`."""
        txns = [self._txn_record(acc, meta)
                for acc, meta in self._done.values()]
        txns.extend(self._unfinished)
        summary = TraceSummary(
            messages_sent=self.messages_sent,
            msgs_by_kind=dict(self.msgs_by_kind),
            drops_by_cause=dict(self.drops_by_cause),
            duplicates_injected=self.duplicates_injected,
            retransmissions=self.retransmissions,
            duplicates_suppressed=self.duplicates_suppressed,
            trace_events=len(self.events),
            processed_events=processed_events,
            peak_heap_depth=peak_heap_depth,
        )
        for record in txns:
            if not record["measured"]:
                continue
            if record["committed"]:
                summary.committed += 1
                summary.rounds_total += record["rounds_sequential"]
                for kind, count in record["rounds"].items():
                    summary.rounds_by_kind[kind] = (
                        summary.rounds_by_kind.get(kind, 0) + count)
                for shard, kinds in record.get("rounds_by_shard",
                                               {}).items():
                    cell = summary.rounds_by_shard.setdefault(shard, {})
                    for kind, count in kinds.items():
                        cell[kind] = cell.get(kind, 0) + count
                summary.response_sum += record["response"]
                summary.propagation_sum += record["propagation"]
                summary.transmission_sum += record["transmission"]
                summary.server_queue_sum += record["server_queue"]
                summary.client_think_sum += record["client_think"]
                summary.slack_sum += record["slack"]
                summary.lock_wait_sum += record["lock_wait"]
                summary.commit_coord_sum += record["commit_coord"]
                summary.abort_resolution_sum += record["abort_resolution"]
                summary.overhead_sum += record["overhead"]
            else:
                summary.aborted += 1
        for _, name, value in self.probes:
            cell = summary.probe_series.setdefault(
                name, {"n": 0, "sum": 0.0, "max": float("-inf")})
            cell["n"] += 1
            cell["sum"] += value
            cell["max"] = max(cell["max"], value)
        return TraceData(events=list(self.events), txns=txns,
                         probes=list(self.probes), summary=summary)
