"""Trace exporters: JSONL, Chrome trace-event JSON (Perfetto), CSV.

The Chrome trace maps one simulation time unit to one microsecond, so a
run with latency 500 shows 500 µs wire flights — open the file at
https://ui.perfetto.dev (or chrome://tracing) to scrub the timeline.
"""

import dataclasses
import json

from repro.obs.spans import PHASE_COLORS, PHASES, phase_view


def _summary_dict(summary):
    if summary is None:
        return None
    return dataclasses.asdict(summary)


def write_jsonl(path, trace, config=None, seed=None):
    """One JSON object per line: a header, then events, transactions, and
    probe samples in that order."""
    with open(path, "w", encoding="utf-8") as out:
        header = {"type": "header", "seed": seed,
                  "config": config.describe() if config is not None else None,
                  "summary": _summary_dict(trace.summary)}
        out.write(json.dumps(header) + "\n")
        for time, kind, fields in trace.events:
            row = {"type": "event", "t": time, "kind": kind}
            row.update(fields)
            out.write(json.dumps(row) + "\n")
        for record in trace.txns:
            row = {"type": "txn"}
            row.update(record)
            out.write(json.dumps(row) + "\n")
        for time, name, value in trace.probes:
            out.write(json.dumps({"type": "probe", "t": time,
                                  "name": name, "value": value}) + "\n")
    return path


_PID_CLIENTS = 1
_PID_NETWORK = 2
_PID_PROTOCOL = 3
_PID_PROBES = 4


def _phase_slices(record, pid, tid):
    """Phase-colored child slices nested under a transaction's span.

    The phases are laid back-to-back as a budget bar (their real
    occurrences interleave — e.g. think alternates with waits — but their
    *durations* are exact and sum to the parent span by the decomposition
    invariant). Child slices carry ``cat: "phase"`` so span-counting
    consumers filtering on ``cat: "txn"`` are unaffected.
    """
    slices = []
    cursor = record["start"]
    for name, value in phase_view(record).items():
        if value <= 0.0:
            continue
        slices.append({
            "ph": "X", "cat": "phase", "pid": pid, "tid": tid,
            "ts": cursor, "dur": value, "name": name,
            "cname": PHASE_COLORS[name],
            "args": {"txn": record["txn"]},
        })
        cursor += value
    return slices


def write_chrome_trace(path, trace):
    """Chrome trace-event format: transaction spans per client, message
    flights per link, counter tracks for probes, instants for the rest."""
    out = [
        {"ph": "M", "name": "process_name", "pid": _PID_CLIENTS, "tid": 0,
         "args": {"name": "clients (transactions)"}},
        {"ph": "M", "name": "process_name", "pid": _PID_NETWORK, "tid": 0,
         "args": {"name": "network (message flights)"}},
        {"ph": "M", "name": "process_name", "pid": _PID_PROTOCOL, "tid": 0,
         "args": {"name": "protocol events"}},
        {"ph": "M", "name": "process_name", "pid": _PID_PROBES, "tid": 0,
         "args": {"name": "probes"}},
    ]
    for record in trace.txns:
        label = ("commit" if record["committed"]
                 else record.get("abort_reason") or "abort")
        tid = record["client"] if record["client"] is not None else 0
        out.append({
            "ph": "X", "cat": "txn", "pid": _PID_CLIENTS,
            "tid": tid,
            "ts": record["start"],
            "dur": max(record["response"], 0.0),
            "name": f"txn {record['txn']} ({label})",
            "args": {"rounds_sequential": record["rounds_sequential"],
                     "rounds": record["rounds"],
                     "lock_wait": record["lock_wait"],
                     "propagation": record["propagation"],
                     "client_think": record["client_think"]},
        })
        out.extend(_phase_slices(record, _PID_CLIENTS, tid))
    link_tids = {}
    for time, kind, fields in trace.events:
        if kind == "msg.send":
            link = (fields["src"], fields["dst"])
            tid = link_tids.get(link)
            if tid is None:
                tid = link_tids[link] = len(link_tids) + 1
                out.append({"ph": "M", "name": "thread_name",
                            "pid": _PID_NETWORK, "tid": tid,
                            "args": {"name": f"{link[0]} to {link[1]}"}})
            out.append({
                "ph": "X", "cat": "msg", "pid": _PID_NETWORK, "tid": tid,
                "ts": time, "dur": max(fields["deliver"] - time, 0.0),
                "name": fields["kind"],
                "args": {"id": fields["id"], "size": fields["size"]},
            })
        elif kind.startswith("engine."):
            continue  # too hot for a useful timeline
        else:
            args = {key: value for key, value in fields.items()
                    if isinstance(value, (int, float, str, bool))
                    or value is None}
            out.append({"ph": "i", "s": "p", "cat": "protocol",
                        "pid": _PID_PROTOCOL, "tid": 0, "ts": time,
                        "name": kind, "args": args})
    for time, name, value in trace.probes:
        out.append({"ph": "C", "pid": _PID_PROBES, "tid": 0, "ts": time,
                    "name": name, "args": {"value": value}})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": out, "displayTimeUnit": "ms"}, handle)
    return path


def write_probes_csv(path, trace):
    """Probe samples as ``time,series,value`` rows."""
    with open(path, "w", encoding="utf-8") as out:
        out.write("time,series,value\n")
        for time, name, value in trace.probes:
            out.write(f"{time:g},{name},{value:g}\n")
    return path


def write_phases_csv(path, records):
    """Per-transaction phase decomposition as CSV, one row per txn."""
    with open(path, "w", encoding="utf-8") as out:
        out.write("txn,client,committed,response,"
                  + ",".join(PHASES) + "\n")
        for record in records:
            phases = phase_view(record)
            out.write(
                f"{record['txn']},{record['client']},"
                f"{int(bool(record['committed']))},{record['response']:g},"
                + ",".join(f"{phases[name]:g}" for name in PHASES) + "\n")
    return path


def write_merged_chrome_trace(path, payloads):
    """One Chrome trace for a whole live run: every endpoint process gets
    its own pid lane, with its transactions (phase-colored), its event
    instants, and its probe counters interleaved on the shared
    CLOCK_MONOTONIC origin all kernels were pinned to.

    ``payloads`` are endpoint payload dicts (see
    :func:`repro.live.results.endpoint_payload`) whose ``trace_events`` /
    ``probes`` entries exist when the run's spec set ``trace_export``.
    JSON round-trips tuples as lists, so both shapes are accepted.
    """
    out = []
    for index, payload in enumerate(sorted(payloads,
                                           key=lambda p: p["site"])):
        pid = 10 + index
        out.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"site {payload['site']} "
                             f"({payload['role']})"}})
        for record in payload["txn_records"]:
            label = ("commit" if record["committed"]
                     else record.get("abort_reason") or "abort")
            out.append({
                "ph": "X", "cat": "txn", "pid": pid, "tid": 0,
                "ts": record["start"],
                "dur": max(record["response"], 0.0),
                "name": f"txn {record['txn']} ({label})",
                "args": {"rounds": record["rounds"],
                         "lock_wait": record["lock_wait"],
                         "overhead": record.get("overhead", 0.0)},
            })
            out.extend(_phase_slices(record, pid, 0))
        for event in payload.get("trace_events", []):
            when, kind, fields = event
            if kind == "msg.send":
                out.append({
                    "ph": "X", "cat": "msg", "pid": pid, "tid": 1,
                    "ts": when,
                    "dur": max(fields["deliver"] - when, 0.0),
                    "name": fields["kind"],
                    "args": {"src": fields["src"], "dst": fields["dst"],
                             "size": fields["size"]},
                })
            else:
                args = {key: value for key, value in fields.items()
                        if isinstance(value, (int, float, str, bool))
                        or value is None}
                out.append({"ph": "i", "s": "t", "cat": "protocol",
                            "pid": pid, "tid": 2, "ts": when,
                            "name": kind, "args": args})
        for sample in payload.get("probes", []):
            when, name, value = sample
            out.append({"ph": "C", "pid": pid, "tid": 3, "ts": when,
                        "name": name, "args": {"value": value}})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": out, "displayTimeUnit": "ms"}, handle)
    return path
