"""Mergeable per-run trace summaries.

A :class:`TraceSummary` holds only sums, counts, and maxima — never means —
so folding the per-cell summaries of a parallel run is exact: merging in
submission order produces bit-identical aggregates whether the cells ran
under ``jobs=1`` or ``jobs=N`` (the same property the metrics pipeline
already has, extended to traces).

Aggregates cover *measured* transactions only (the post-warmup population),
so trace means line up with the steady-state :class:`RunMetrics` they sit
next to in a report.
"""

from dataclasses import dataclass, field

#: round kinds excluded from the sequential-round total: the MR1W
#: concurrent writer ship overlaps the read group's rounds instead of
#: following them, so it adds messages but no response-time rounds.
#: Likewise the 2PC vote fan-in and decision-ack fan-in: one participant
#: (the charge-flagged one) accounts the sequential round, the other
#: replies travel in parallel with it.
NON_SEQUENTIAL_ROUND_KINDS = frozenset(
    {"grant_concurrent", "vote_concurrent", "commit_ack_concurrent"})

#: response-time components, in the order reports print them
COMPONENTS = ("propagation", "transmission", "server_queue",
              "client_think", "slack", "lock_wait")


def _merge_counts(into, other):
    for key, value in other.items():
        into[key] = into.get(key, 0) + value


@dataclass
class TraceSummary:
    """Aggregate of one (or several merged) traced runs."""

    runs: int = 1
    committed: int = 0
    aborted: int = 0
    #: sequential message rounds over committed measured txns
    rounds_total: int = 0
    #: all round charges (incl. non-sequential) over committed measured txns
    rounds_by_kind: dict = field(default_factory=dict)
    #: shard (home-server site id) -> {kind: count}, sharded runs only —
    #: empty for single-server runs, keeping their summaries unchanged
    rounds_by_shard: dict = field(default_factory=dict)
    response_sum: float = 0.0
    propagation_sum: float = 0.0
    transmission_sum: float = 0.0
    server_queue_sum: float = 0.0
    client_think_sum: float = 0.0
    slack_sum: float = 0.0
    lock_wait_sum: float = 0.0
    #: phase sub-accounts (see repro.obs.spans): commit_coord and
    #: abort_resolution re-attribute wire time already counted in the
    #: component sums above; overhead is live-only time *outside* them.
    commit_coord_sum: float = 0.0
    abort_resolution_sum: float = 0.0
    overhead_sum: float = 0.0
    messages_sent: int = 0
    msgs_by_kind: dict = field(default_factory=dict)
    drops_by_cause: dict = field(default_factory=dict)
    duplicates_injected: int = 0
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    trace_events: int = 0
    #: probe series name -> {"n": samples, "sum": total, "max": peak}
    probe_series: dict = field(default_factory=dict)
    processed_events: int = 0
    peak_heap_depth: int = 0

    # -- derived -------------------------------------------------------------

    @property
    def mean_rounds_per_commit(self):
        if self.committed == 0:
            return float("nan")
        return self.rounds_total / self.committed

    @property
    def mean_response_time(self):
        if self.committed == 0:
            return float("nan")
        return self.response_sum / self.committed

    def component_sums(self):
        """Response-time decomposition, same order as ``COMPONENTS``."""
        return {
            "propagation": self.propagation_sum,
            "transmission": self.transmission_sum,
            "server_queue": self.server_queue_sum,
            "client_think": self.client_think_sum,
            "slack": self.slack_sum,
            "lock_wait": self.lock_wait_sum,
        }

    def component_fractions(self):
        """Each component as a fraction of summed response time."""
        total = self.response_sum
        sums = self.component_sums()
        if total <= 0:
            return {name: float("nan") for name in sums}
        return {name: value / total for name, value in sums.items()}

    def phase_sums(self):
        """Named-phase decomposition (see :mod:`repro.obs.spans`): the
        component sums regrouped so every phase is disjoint and the
        phases sum to ``response_sum`` exactly. ``network`` is the
        generic wire time left after carving out the 2PC-coordination
        and abort-resolution flights."""
        wire = self.propagation_sum + self.transmission_sum + self.slack_sum
        return {
            "network": wire - self.commit_coord_sum
                       - self.abort_resolution_sum,
            "server_queue": self.server_queue_sum,
            "client_think": self.client_think_sum,
            "commit_coord": self.commit_coord_sum,
            "abort_resolution": self.abort_resolution_sum,
            "overhead": self.overhead_sum,
            "lock_wait": self.lock_wait_sum,
        }

    def describe(self):
        """Multi-line human summary, used by the CLI."""
        lines = [
            f"trace: {self.committed} committed / {self.aborted} aborted "
            f"measured txns over {self.runs} run(s)",
            f"  mean sequential rounds per commit: "
            f"{self.mean_rounds_per_commit:.2f}",
        ]
        if self.rounds_by_kind:
            parts = ", ".join(
                f"{kind}={count / self.committed:.2f}"
                for kind, count in sorted(self.rounds_by_kind.items())
                if self.committed)
            lines.append(f"  rounds by kind (per commit): {parts}")
        fractions = self.component_fractions()
        parts = ", ".join(f"{name} {100.0 * frac:.1f}%"
                          for name, frac in fractions.items())
        lines.append(f"  response decomposition: {parts}")
        lines.append(
            f"  messages: {self.messages_sent} sent, "
            f"drops={sum(self.drops_by_cause.values())}, "
            f"dups={self.duplicates_injected}, "
            f"retransmits={self.retransmissions}")
        lines.append(
            f"  engine: {self.processed_events} events processed, "
            f"peak heap depth {self.peak_heap_depth}")
        return "\n".join(lines)

    # -- merging -------------------------------------------------------------

    @classmethod
    def merge(cls, summaries):
        """Exact fold of several summaries (order-independent sums/maxima);
        returns ``None`` when no input carries a summary."""
        summaries = [s for s in summaries if s is not None]
        if not summaries:
            return None
        out = cls(runs=0)
        for s in summaries:
            out.runs += s.runs
            out.committed += s.committed
            out.aborted += s.aborted
            out.rounds_total += s.rounds_total
            _merge_counts(out.rounds_by_kind, s.rounds_by_kind)
            for shard, kinds in s.rounds_by_shard.items():
                _merge_counts(
                    out.rounds_by_shard.setdefault(shard, {}), kinds)
            out.response_sum += s.response_sum
            out.propagation_sum += s.propagation_sum
            out.transmission_sum += s.transmission_sum
            out.server_queue_sum += s.server_queue_sum
            out.client_think_sum += s.client_think_sum
            out.slack_sum += s.slack_sum
            out.lock_wait_sum += s.lock_wait_sum
            out.commit_coord_sum += s.commit_coord_sum
            out.abort_resolution_sum += s.abort_resolution_sum
            out.overhead_sum += s.overhead_sum
            out.messages_sent += s.messages_sent
            _merge_counts(out.msgs_by_kind, s.msgs_by_kind)
            _merge_counts(out.drops_by_cause, s.drops_by_cause)
            out.duplicates_injected += s.duplicates_injected
            out.retransmissions += s.retransmissions
            out.duplicates_suppressed += s.duplicates_suppressed
            out.trace_events += s.trace_events
            out.processed_events += s.processed_events
            out.peak_heap_depth = max(out.peak_heap_depth,
                                      s.peak_heap_depth)
            for name, cell in s.probe_series.items():
                mine = out.probe_series.setdefault(
                    name, {"n": 0, "sum": 0.0, "max": float("-inf")})
                mine["n"] += cell["n"]
                mine["sum"] += cell["sum"]
                mine["max"] = max(mine["max"], cell["max"])
        return out
