"""Round accounting on the paper's contended-item scenario (3m vs 2m+1).

Re-runs the Figure 1 shape — ``m`` clients each exclusively accessing the
same data item, with a primer transaction holding the item so all ``m``
requests land in one s-2PL wait queue / one g-2PL collection window — with
tracing enabled, and reports the *measured* sequential message rounds the
contenders' busy period cost. s-2PL pays request + grant + release per
transaction (3m rounds); g-2PL merges each release with the successor's
grant, leaving m requests, 1 grant, m-1 handoffs, and 1 return (2m+1).
"""

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.locking.modes import LockMode
from repro.network.topology import UniformTopology
from repro.network.transport import Network
from repro.obs.tracer import Tracer
from repro.protocols.registry import make_protocol
from repro.protocols.transaction import Transaction
from repro.sim.engine import Simulator
from repro.storage.store import VersionedStore
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder
from repro.workload.spec import Operation, TransactionSpec


@dataclass(frozen=True)
class RoundProfile:
    """Measured vs expected rounds for one (protocol, m) scenario."""

    protocol: str
    m: int
    rounds_total: int
    rounds_by_kind: dict
    expected_total: int

    @property
    def mean_rounds_per_commit(self):
        return self.rounds_total / self.m

    @property
    def matches_expectation(self):
        return self.rounds_total == self.expected_total


def expected_rounds(protocol, m):
    """The paper's closed forms: 3m for s-2PL, 2m+1 for g-2PL."""
    if protocol.startswith("g2pl"):
        return 2 * m + 1
    return 3 * m


def expected_txn_rounds(protocol, n_ops, n_homes=1, commit_protocol="2pc"):
    """Sequential rounds for one *uncontended* transaction of ``n_ops``
    operations whose items live on ``n_homes`` distinct home servers.

    s-2PL pays request + grant per operation (2m), then the commit:

    - one home server: a single combined commit/release round -> 2m+1;
    - classic 2PC across k>1 homes: prepare, vote, decide -> 2m+3
      (fault mode adds one decision-ack round on top);
    - ``2pc-opt``: the votes ride the last lock grants and the decision
      doubles as the release, collapsing the commit back to one
      round -> 2m+1, same as the single-server protocol.

    g-2PL ships the item itself, so an uncontended operation costs
    request + ship + return (3m); its non-fault commit is client-local
    (TxnDone rides off the critical path) and costs no rounds — and the
    count is independent of how many homes the items span, because the
    per-shard returns overlap.  The g-2PL savings the paper counts come
    from *contended* windows (see :func:`expected_rounds`), not from
    this uncontended profile.
    """
    if n_ops < 1:
        raise ValueError(f"n_ops must be >= 1, got {n_ops!r}")
    if n_homes < 1:
        raise ValueError(f"n_homes must be >= 1, got {n_homes!r}")
    if protocol.startswith("g2pl"):
        return 3 * n_ops
    if n_homes == 1 or commit_protocol == "2pc-opt":
        return 2 * n_ops + 1
    return 2 * n_ops + 3


def contended_round_profile(protocol, m, latency=2.0, think=1.0):
    """Run the primed contention scenario traced; returns a
    :class:`RoundProfile` over the ``m`` contenders (the primer is run
    unmeasured, like a warmup transaction)."""
    config = SimulationConfig(
        protocol=protocol, n_clients=m + 1, n_items=1,
        network_latency=latency, read_probability=0.0,
        total_transactions=10, warmup_transactions=0, record_history=True)
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer
    history = HistoryRecorder()
    store = VersionedStore(range(1))
    wal = WriteAheadLog()
    network = Network(sim, UniformTopology(latency))
    tracer.bind_network(network)
    client_ids = list(range(1, m + 2))
    server, clients = make_protocol(protocol, sim, config, store, wal,
                                    history, client_ids)
    network.add_site(server)
    for client in clients.values():
        network.add_site(client)

    spec = TransactionSpec(operations=(
        Operation(item_id=0, mode=LockMode.WRITE, think_time=think),))
    primer_client = client_ids[-1]

    def launch(client_id, txn_id, delay, measured):
        def body():
            yield sim.timeout(delay)
            txn = Transaction(txn_id, client_id, spec, birth=sim.now)
            tracer.txn_begin(txn)
            outcome = yield sim.spawn(clients[client_id].execute(txn))
            tracer.txn_finished(outcome, measured=measured)
            return outcome
        return sim.spawn(body())

    # The primer takes the item first; the m contenders' requests all
    # arrive while it is held — one wait queue / one collection window.
    launch(primer_client, txn_id=m + 1, delay=0.0, measured=False)
    for index in range(m):
        launch(client_ids[index], txn_id=index + 1, delay=1.0, measured=True)
    sim.run()

    trace = tracer.finish()
    summary = trace.summary
    if summary.committed != m:
        raise RuntimeError(
            f"{protocol}: expected {m} measured commits, "
            f"got {summary.committed}")
    return RoundProfile(
        protocol=protocol, m=m,
        rounds_total=summary.rounds_total,
        rounds_by_kind=dict(summary.rounds_by_kind),
        expected_total=expected_rounds(protocol, m),
    )


def round_table(ms=(2, 4, 8), protocols=("s2pl", "g2pl"), latency=2.0):
    """Round profiles for every (protocol, m) pair, for the report."""
    return [contended_round_profile(protocol, m, latency=latency)
            for m in ms for protocol in protocols]
