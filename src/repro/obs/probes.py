"""Periodic time-series probes sampled on a sim-time interval.

The sampler schedules itself on the simulation heap like any other timer;
its callbacks are strictly read-only (no protocol state is touched and no
random numbers are drawn), so enabling probes shifts heap sequence numbers
without perturbing the relative order — or the results — of the simulated
system.
"""


class ProbeSampler:
    """Samples a set of named gauges every ``interval`` sim-time units."""

    def __init__(self, sim, tracer, interval, sources, stop_when=None):
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, "
                             f"got {interval!r}")
        self.sim = sim
        self.tracer = tracer
        self.interval = interval
        self.sources = list(sources)   # [(name, zero-arg callable), ...]
        self.stop_when = stop_when
        self.samples_taken = 0

    def start(self):
        self.sim.call_later(self.interval, self._tick)
        return self

    def _tick(self):
        if self.stop_when is not None and self.stop_when():
            return  # run is over; stop rescheduling, drain quietly
        for name, read in self.sources:
            self.tracer.probe(name, float(read()))
        self.samples_taken += 1
        self.sim.call_later(self.interval, self._tick)


def default_sources(sim, network, server, tracer, drivers=None):
    """The standard gauge set: heap pending, in-flight messages, and —
    when the protocol server(s) expose them — lock-queue depth and
    forward-list occupancy.

    ``server`` may be a single protocol server or a list of them (sharded
    deployments); multi-server gauges report the sum over all shards, and
    a one-element list produces exactly the single-server series.

    ``drivers`` (optional) adds population gauges for any driver exposing
    a :class:`~repro.workload.population.PopulationState` (``.state``):
    in-flight transactions, busy-user skips, and admission-shed counts —
    aggregated plus a per-site in-flight series. Closed-loop
    :class:`ClientDriver`\\ s have no ``state`` and contribute nothing, so
    pre-population probe traces are unchanged.
    """
    servers = list(server) if isinstance(server, (list, tuple)) else [server]
    sources = [
        ("heap_pending", lambda: sim.pending),
        ("in_flight_msgs", lambda: tracer.in_flight_total),
    ]
    with_queue = [s for s in servers if hasattr(s, "queue_depth")]
    if with_queue:
        sources.append(("lock_queue_depth",
                        lambda: sum(s.queue_depth() for s in with_queue)))
    with_fl = [s for s in servers if hasattr(s, "fl_occupancy")]
    if with_fl:
        sources.append(("fl_occupancy",
                        lambda: sum(s.fl_occupancy() for s in with_fl)))
    adaptive = [s for s in servers if hasattr(s, "window_depth")]
    if adaptive:
        # Adaptive controllers (repro.adapt): the window-occupancy signal
        # the window controller feeds on, plus live controller state.
        # Gated on the adaptive server type so static-protocol probe
        # traces (and their goldens) are unchanged.
        sources.append(("window_occupancy",
                        lambda: sum(s.window_depth() for s in adaptive)))
        sources.append(("adapt_hold_pending",
                        lambda: sum(s.hold_pending() for s in adaptive)))
        sources.append(("hybrid_single_items",
                        lambda: sum(s.single_mode_items()
                                    for s in adaptive)))
        sources.append(("spec_outstanding",
                        lambda: sum(s.spec_outstanding()
                                    for s in adaptive)))
    popn = [d for d in (drivers or []) if hasattr(d, "state")]
    if popn:
        sources.append(("popn_inflight",
                        lambda: sum(len(d.state.active) for d in popn)))
        sources.append(("popn_busy_skipped",
                        lambda: sum(d.state.busy_skipped for d in popn)))
        sources.append(("popn_shed",
                        lambda: sum(d.state.shed for d in popn)))
        for driver in popn:
            sources.append((f"popn_inflight.site{driver.client_id}",
                            lambda d=driver: len(d.state.active)))
    return sources
