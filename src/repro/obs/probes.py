"""Periodic time-series probes sampled on a sim-time interval.

The sampler schedules itself on the simulation heap like any other timer;
its callbacks are strictly read-only (no protocol state is touched and no
random numbers are drawn), so enabling probes shifts heap sequence numbers
without perturbing the relative order — or the results — of the simulated
system.
"""


class ProbeSampler:
    """Samples a set of named gauges every ``interval`` sim-time units."""

    def __init__(self, sim, tracer, interval, sources, stop_when=None):
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, "
                             f"got {interval!r}")
        self.sim = sim
        self.tracer = tracer
        self.interval = interval
        self.sources = list(sources)   # [(name, zero-arg callable), ...]
        self.stop_when = stop_when
        self.samples_taken = 0

    def start(self):
        self.sim.call_later(self.interval, self._tick)
        return self

    def _tick(self):
        if self.stop_when is not None and self.stop_when():
            return  # run is over; stop rescheduling, drain quietly
        for name, read in self.sources:
            self.tracer.probe(name, float(read()))
        self.samples_taken += 1
        self.sim.call_later(self.interval, self._tick)


def default_sources(sim, network, server, tracer):
    """The standard gauge set: heap pending, in-flight messages, and —
    when the protocol server exposes them — lock-queue depth and
    forward-list occupancy."""
    sources = [
        ("heap_pending", lambda: sim.pending),
        ("in_flight_msgs", lambda: tracer.in_flight_total),
    ]
    if hasattr(server, "queue_depth"):
        sources.append(("lock_queue_depth", server.queue_depth))
    if hasattr(server, "fl_occupancy"):
        sources.append(("fl_occupancy", server.fl_occupancy))
    return sources
