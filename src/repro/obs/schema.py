"""The trace event schema and its validator (used by CI's chaos smoke)."""

#: event kind -> required field names (extra fields are allowed)
EVENT_SCHEMA = {
    # sim engine (only with engine-event tracing enabled)
    "engine.dispatch": frozenset({"depth"}),
    # network
    "msg.send": frozenset({"id", "src", "dst", "kind", "size", "deliver"}),
    "msg.deliver": frozenset({"id", "src", "dst"}),
    "msg.drop": frozenset({"id", "src", "dst", "cause"}),
    "msg.dup": frozenset({"id", "src", "dst"}),
    "msg.retransmit": frozenset({"src", "dst"}),
    "msg.dup_suppressed": frozenset({"site", "src"}),
    # locking (s-2PL family)
    "lock.request": frozenset({"txn", "item", "mode", "client"}),
    "lock.queued": frozenset({"txn", "item"}),
    "lock.grant": frozenset({"txn", "item", "mode"}),
    "lock.release": frozenset({"txn", "granted"}),
    "lock.deadlock": frozenset({"requester", "victim", "cycle"}),
    # transaction lifecycle
    "txn.begin": frozenset({"txn", "client"}),
    "txn.end": frozenset({"txn", "client", "committed", "response"}),
    "txn.abort": frozenset({"txn", "reason"}),
    # fault recovery
    "crash.sweep": frozenset({"reclaimed"}),
    # g-2PL forward lists and chains
    "fl.collect": frozenset({"txn", "item", "window"}),
    "fl.window_open": frozenset({"item", "carried"}),
    "fl.window_close": frozenset({"item", "size"}),
    "fl.dispatch": frozenset({"item", "n_txns", "epoch"}),
    "fl.home": frozenset({"item"}),
    "fl.graft": frozenset({"txn", "item"}),
    "fl.handoff": frozenset({"txn", "item", "to"}),
    "fl.return": frozenset({"txn", "item"}),
    "fl.watchdog": frozenset({"item", "attempt"}),
    "fl.repair": frozenset({"item", "action"}),
    "chain.commit": frozenset({"txn"}),
}

#: keys every per-transaction accounting record must carry
TXN_RECORD_KEYS = frozenset({
    "txn", "client", "committed", "measured", "start", "end", "response",
    "rounds", "rounds_sequential", "propagation", "transmission", "slack",
    "server_queue", "client_think", "lock_wait",
    "commit_coord", "abort_resolution", "overhead",
})


def validate_events(events, max_errors=20):
    """Check a trace's event stream against :data:`EVENT_SCHEMA`.

    Returns a list of error strings (empty = valid): unknown kinds,
    missing required fields, and non-monotonic timestamps.
    """
    errors = []
    previous_time = float("-inf")
    for index, (time, kind, fields) in enumerate(events):
        if len(errors) >= max_errors:
            errors.append("... (further errors suppressed)")
            break
        if time < previous_time:
            errors.append(
                f"event {index} ({kind}): time {time} < previous "
                f"{previous_time} (trace must be time-ordered)")
        previous_time = time
        required = EVENT_SCHEMA.get(kind)
        if required is None:
            errors.append(f"event {index}: unknown kind {kind!r}")
            continue
        missing = required - fields.keys()
        if missing:
            errors.append(
                f"event {index} ({kind}): missing fields {sorted(missing)}")
    return errors


def validate_trace(trace):
    """Validate a full :class:`~repro.obs.tracer.TraceData`."""
    errors = validate_events(trace.events)
    for index, record in enumerate(trace.txns):
        missing = TXN_RECORD_KEYS - record.keys()
        if missing:
            errors.append(
                f"txn record {index}: missing keys {sorted(missing)}")
    for index, sample in enumerate(trace.probes):
        if len(sample) != 3:
            errors.append(f"probe sample {index}: expected "
                          f"(time, name, value), got {sample!r}")
    return errors
