"""Command-line interface: run single experiments or whole figures.

Installed as ``repro-experiment``. Examples::

    repro-experiment run --protocol g2pl --clients 50 --pr 0.25 \
        --latency 500 --transactions 1000
    repro-experiment compare --pr 0.6 --latency 500
    repro-experiment figure 3
    repro-experiment figure 11 --fidelity smoke
    repro-experiment list
"""

import argparse
import sys

from repro.core.config import Fidelity, SimulationConfig
from repro.core.runner import (
    compare_protocols,
    improvement_percentage,
    run_simulation,
)
from repro.protocols.registry import available_protocols


def _add_workload_args(parser):
    parser.add_argument("--clients", type=int, default=50)
    parser.add_argument("--items", type=int, default=25)
    parser.add_argument("--pr", type=float, default=0.6,
                        help="read probability (Table 1)")
    parser.add_argument("--latency", type=float, default=500.0)
    parser.add_argument("--transactions", type=int, default=1000)
    parser.add_argument("--warmup", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec, e.g. "
             "'loss=0.05,dup=0.01,jitter=50,crash=3@10000:20000' "
             "(see repro.network.faults.FaultSpec.parse)")
    parser.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="partition the hot items over K home servers "
             "(cross-shard transactions commit with 2PC)")
    parser.add_argument(
        "--regions", type=int, default=1, metavar="R",
        help="group the shard servers into R geographic regions "
             "(clients sit with their home shard; inter-region hops "
             "cost --latency, intra-region hops --intra-latency)")
    parser.add_argument(
        "--intra-latency", type=float, default=1.0, metavar="L",
        help="one-way latency inside a region (default 1.0)")
    parser.add_argument(
        "--commit", default="2pc", choices=("2pc", "2pc-opt"),
        help="cross-shard atomic commit: classic 2PC (2m+3 rounds) or "
             "the piggybacked variant (2m+1 rounds)")
    parser.add_argument(
        "--cross-shard", type=float, default=None, metavar="P",
        help="probability a transaction draws from the full item pool "
             "instead of its home shard (default: every draw is global)")
    parser.add_argument(
        "--population", type=int, default=None, metavar="N",
        help="multiplex N logical users over the client sites with "
             "open-arrival traffic (default: the paper's closed-loop "
             "terminals)")
    parser.add_argument(
        "--arrival", default="poisson",
        choices=("poisson", "burst", "diurnal"),
        help="open-arrival process shape (with --population)")
    parser.add_argument(
        "--arrival-rate", type=float, default=0.001, metavar="R",
        help="transactions per user per time unit (with --population)")
    parser.add_argument(
        "--zipf", type=float, default=None, metavar="S",
        help="Zipf-like access skew (item at rank r has weight "
             "1/(r+1)^S; default 0 = uniform)")
    parser.add_argument(
        "--txn-mix", default=None, metavar="MIX",
        help="transaction classes 'name:weight:min-max:read_prob,...' "
             "e.g. 'browse:6:1-3:0.9,update:3:2-5:0.3' "
             "(with --population)")
    parser.add_argument(
        "--max-inflight", type=int, default=256, metavar="K",
        help="admission control: shed arrivals beyond K in-flight "
             "transactions per site (with --population)")
    parser.add_argument(
        "--streaming", default=None, choices=("on", "off", "auto"),
        help="bounded-memory metrics (reservoir percentiles, running "
             "moments); auto switches on above the streaming "
             "threshold (default: auto)")
    parser.add_argument(
        "--termination", default=None, choices=("global", "quota"),
        help="run-length rule: 'global' stops at the Nth finished "
             "transaction anywhere (the paper's rule); 'quota' gives "
             "each client transactions/clients of the total (required "
             "by --lp; default: global, or quota when --lp is given)")
    parser.add_argument(
        "--lp", action="store_true",
        help="run each shard's server and co-located clients as a "
             "logical process on its own core (needs --shards K > 1 and "
             "a shard-local workload, --cross-shard 0); bit-identical "
             "to the serial run")
    parser.add_argument(
        "--no-batch-delivery", action="store_true",
        help="disable same-timestamp delivery batching in the transport "
             "(A/B knob; trajectories are bit-identical either way)")
    parser.add_argument(
        "--trace", action="store_true",
        help="collect structured trace events and per-transaction "
             "round/latency accounting (metrics stay bit-identical)")
    parser.add_argument(
        "--probe-interval", type=float, default=None, metavar="T",
        help="sample time-series gauges (queue depths, in-flight "
             "messages, heap depth) every T sim-time units")
    adapt = parser.add_argument_group(
        "adaptive concurrency control (repro.adapt; protocols "
        "g2pl-adaptive / hybrid / g2pl-spec)")
    adapt.add_argument(
        "--adapt-window", action="store_true",
        help="tune the g-2PL collection window online (feedback loop on "
             "freeze depth; implied by --protocol g2pl-adaptive)")
    adapt.add_argument(
        "--hybrid", action="store_true",
        help="switch each item between s-2PL-equivalent and grouped "
             "service on a streaming contention score (implied by "
             "--protocol hybrid)")
    adapt.add_argument(
        "--speculate", action="store_true",
        help="clock-assisted speculative dispatch: pre-freeze and ship "
             "the next window once the quiescence bound proves it final "
             "(implied by --protocol g2pl-spec)")
    adapt.add_argument("--window-gain", type=float, default=0.5,
                       help="window controller integral gain")
    adapt.add_argument("--window-target", type=float, default=3.0,
                       metavar="DEPTH", help="window depth setpoint")
    adapt.add_argument("--window-min", type=float, default=0.0,
                       metavar="XLAT",
                       help="min hold, in multiples of --latency")
    adapt.add_argument("--window-max", type=float, default=2.0,
                       metavar="XLAT",
                       help="max hold, in multiples of --latency")
    adapt.add_argument("--hybrid-low", type=float, default=0.3,
                       help="switch to single mode below this score")
    adapt.add_argument("--hybrid-high", type=float, default=0.5,
                       help="switch to grouped mode above this score")
    adapt.add_argument("--hybrid-scale", type=float, default=3.0,
                       help="freeze depth at which the score reads 0.5")
    adapt.add_argument("--adapt-ewma", type=float, default=0.3,
                       help="EWMA weight for the adapt estimators")
    adapt.add_argument("--spec-margin", type=float, default=1.5,
                       metavar="XLAT",
                       help="quiescence bound, in multiples of --latency")


def _jobs_type(value):
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 1, or 0 for all CPUs (got {jobs})")
    return jobs


def _add_jobs_arg(parser):
    parser.add_argument(
        "--jobs", type=_jobs_type, default=1, metavar="N",
        help="parallel worker processes (0 = all CPUs; results are "
             "bit-identical to --jobs 1 for the same seed)")


def _config_from(args, protocol):
    streaming = {"on": True, "off": False,
                 "auto": None, None: None}[getattr(args, "streaming", None)]
    lp = getattr(args, "lp", False)
    termination = getattr(args, "termination", None)
    if termination is None:
        # --lp requires per-client quotas; picking it implicitly keeps
        # "repro-experiment run --shards 4 --cross-shard 0 --lp" working
        # without a second flag. An explicit --termination always wins.
        termination = "quota" if lp else "global"
    cross_shard = getattr(args, "cross_shard", None)
    if lp and cross_shard is None:
        cross_shard = 0.0
    return SimulationConfig(
        protocol=protocol, n_clients=args.clients, n_items=args.items,
        read_probability=args.pr, network_latency=args.latency,
        total_transactions=args.transactions,
        warmup_transactions=args.warmup, seed=args.seed,
        faults=getattr(args, "faults", None),
        n_shards=getattr(args, "shards", 1),
        n_regions=getattr(args, "regions", 1),
        intra_region_latency=getattr(args, "intra_latency", 1.0),
        commit_protocol=getattr(args, "commit", "2pc"),
        cross_shard_probability=cross_shard,
        population=getattr(args, "population", None),
        arrival=getattr(args, "arrival", "poisson"),
        arrival_rate=getattr(args, "arrival_rate", 0.001),
        access_skew=getattr(args, "zipf", None) or 0.0,
        txn_mix=getattr(args, "txn_mix", None),
        max_inflight_per_site=getattr(args, "max_inflight", 256),
        streaming=streaming,
        termination=termination,
        lp=lp,
        batch_delivery=not getattr(args, "no_batch_delivery", False),
        trace=getattr(args, "trace", False),
        probe_interval=getattr(args, "probe_interval", None),
        adapt_window=getattr(args, "adapt_window", False),
        hybrid=getattr(args, "hybrid", False),
        speculate=getattr(args, "speculate", False),
        window_gain=getattr(args, "window_gain", 0.5),
        window_target_depth=getattr(args, "window_target", 3.0),
        window_min=getattr(args, "window_min", 0.0),
        window_max=getattr(args, "window_max", 2.0),
        hybrid_low=getattr(args, "hybrid_low", 0.3),
        hybrid_high=getattr(args, "hybrid_high", 0.5),
        hybrid_scale=getattr(args, "hybrid_scale", 3.0),
        adapt_ewma=getattr(args, "adapt_ewma", 0.3),
        spec_margin=getattr(args, "spec_margin", 1.5),
        record_history=False)


def _profiled(args, label, work):
    """Run ``work()`` under cProfile when ``--profile`` was given, writing
    ``profile_<label>.pstats`` next to the other artifacts."""
    if not getattr(args, "profile", False):
        return work()
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return work()
    finally:
        profiler.disable()
        path = f"profile_{label}.pstats"
        profiler.dump_stats(path)
        print(f"wrote {path} (inspect with python -m pstats {path})",
              file=sys.stderr)


def _cmd_run(args):
    if getattr(args, "jobs", 1) not in (None, 1):
        print("note: a single simulation always runs serially; "
              "--jobs applies to compare/figure sweeps", file=sys.stderr)
    result = _profiled(args, args.protocol,
                       lambda: run_simulation(_config_from(args,
                                                           args.protocol)))
    print(result.summary())
    print(f"  duration: {result.duration:,.0f} time units, "
          f"throughput: {result.throughput:.5f} txn/unit")
    for key, value in sorted(result.server_stats.items()):
        print(f"  {key}: {value}")
    if args.verbose:
        print(f"  {result.engine_summary()}")
        print(f"  p50/p95/p99 response: "
              f"{result.metrics.p50_response_time:,.1f} / "
              f"{result.metrics.p95_response_time:,.1f} / "
              f"{result.metrics.p99_response_time:,.1f}")
    if result.trace is not None:
        print(result.trace.summary.describe())
    return 0


def _cmd_compare(args):
    config = _config_from(args, "g2pl")
    label = "-".join(args.protocols)
    results = _profiled(
        args, label,
        lambda: compare_protocols(config, tuple(args.protocols),
                                  replications=args.replications,
                                  jobs=args.jobs))
    for name, result in results.items():
        print(f"  {name:10} {result.summary()}")
        if result.trace_summary is not None:
            print(f"    mean sequential rounds per commit: "
                  f"{result.trace_summary.mean_rounds_per_commit:.2f}")
    if "s2pl" in results and "g2pl" in results:
        improvement = improvement_percentage(results["s2pl"],
                                             results["g2pl"])
        print(f"g-2PL improvement over s-2PL: {improvement:+.1f}% "
              f"(paper: 19.5%-26.9% with updates)")
    return 0


def _cmd_trace(args):
    from repro.obs.export import (
        write_chrome_trace,
        write_jsonl,
        write_probes_csv,
    )

    args.trace = True
    if args.probe_interval is None:
        # Without an explicit interval, sample roughly once per round trip
        # so the probe CSV is never empty.
        args.probe_interval = max(2.0 * args.latency, 1.0)
    config = _config_from(args, args.protocol)
    result = run_simulation(config)
    trace = result.trace
    prefix = args.out
    jsonl = f"{prefix}.jsonl"
    chrome = f"{prefix}.chrome.json"
    csv_path = f"{prefix}.metrics.csv"
    write_jsonl(jsonl, trace, config=config, seed=result.seed)
    write_chrome_trace(chrome, trace)
    write_probes_csv(csv_path, trace)
    print(result.summary())
    print(trace.summary.describe())
    print(f"wrote {jsonl} ({len(trace.events)} events, "
          f"{len(trace.txns)} txn records)")
    print(f"wrote {chrome} (open in Perfetto / chrome://tracing)")
    print(f"wrote {csv_path} ({len(trace.probes)} probe samples)")
    return 0


def _cmd_decompose(args):
    from repro.obs.decompose import decompose_records, sim_vs_live
    from repro.obs.export import write_phases_csv

    if args.live:
        from repro.live.scenario import ScenarioSpec

        spec = ScenarioSpec(
            protocol=args.protocol, mode=args.mode,
            n_clients=args.live_clients, latency=args.live_latency,
            seed=args.seed, think=args.think, repeats=args.repeats,
            duration=args.duration, n_items=args.items,
            read_probability=args.pr)
        report, live, _reference = sim_vs_live(
            spec, time_scale=args.time_scale)
        print(report.sim.describe())
        print(report.live.describe())
        print(report.describe())
        if args.out:
            csv_path = f"{args.out}.phases.csv"
            write_phases_csv(csv_path,
                             live.merged.measured_committed().values())
            print(f"wrote {csv_path}")
        bad = report.sim.violations + report.live.violations
        if bad:
            print(f"decomposition invariant violated ({len(bad)}): "
                  f"{bad[0]}", file=sys.stderr)
            return 1
        return 0
    args.trace = True
    config = _config_from(args, args.protocol)
    result = run_simulation(config)
    records = [record for record in result.trace.txns
               if record["measured"]]
    decomposition = decompose_records(
        records, label=f"{args.protocol} seed {result.seed}",
        threshold=config.streaming_threshold,
        reservoir_capacity=config.reservoir_capacity)
    print(result.summary())
    print(decomposition.describe())
    if args.out:
        csv_path = f"{args.out}.phases.csv"
        write_phases_csv(csv_path, records)
        print(f"wrote {csv_path}")
    if decomposition.violations:
        print(f"decomposition invariant violated "
              f"({len(decomposition.violations)}): "
              f"{decomposition.violations[0]}", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args):
    from repro.analysis.report import generate_report

    report = generate_report(fidelity=args.fidelity, seed=args.seed,
                             quick=args.quick, jobs=args.jobs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_figure(args):
    from repro.analysis import ascii_plot, render_experiment
    from repro.core import experiments as exp
    from repro.core.worked_example import run_worked_example
    from repro.network.presets import NetworkEnvironment

    fidelity = Fidelity[args.fidelity.upper()]
    number = args.number
    jobs = args.jobs

    def show(result, improvement=("s2pl", "g2pl")):
        kwargs = {}
        if improvement and all(p in result.series for p in improvement):
            kwargs["improvement_between"] = improvement
        print(render_experiment(result, **kwargs))
        print()
        print(ascii_plot(result))

    if number == "1":
        print(run_worked_example())
    elif number in ("2", "3", "4"):
        pr = {"2": 0.0, "3": 0.6, "4": 1.0}[number]
        show(exp.figure_response_vs_latency(pr, fidelity=fidelity,
                                            jobs=jobs))
    elif number in ("5", "6", "7"):
        env = {"5": NetworkEnvironment.SS_LAN, "6": NetworkEnvironment.MAN,
               "7": NetworkEnvironment.L_WAN}[number]
        show(exp.figure_response_vs_read_probability(env, fidelity=fidelity,
                                                     jobs=jobs))
    elif number in ("8", "9"):
        pr = {"8": 0.6, "9": 0.8}[number]
        show(exp.figure_aborts_vs_latency(pr, fidelity=fidelity, jobs=jobs))
    elif number == "10":
        show(exp.figure_readonly_aborts_vs_latency(fidelity=fidelity,
                                                   jobs=jobs),
             improvement=None)
    elif number == "11":
        show(exp.figure_aborts_vs_fl_length(fidelity=fidelity, jobs=jobs),
             improvement=None)
    elif number in ("12", "13", "14", "15"):
        pr = 0.25 if number in ("12", "13") else 0.75
        metric = "response" if number in ("12", "14") else "aborts"
        show(exp.figure_vs_clients(pr, metric, fidelity=fidelity,
                                   jobs=jobs))
    elif number in ("loss", "loss-aborts"):
        metric = "aborts" if number == "loss-aborts" else "response"
        show(exp.figure_loss_sweep(metric, fidelity=fidelity, jobs=jobs))
    elif number == "scale":
        results = exp.population_scale_experiment(fidelity=fidelity,
                                                  jobs=jobs)
        show(results["throughput"], improvement=None)
        print()
        show(results["p99"], improvement=None)
        for note in results["throughput"].notes:
            print(note)
    elif number == "shard-crossover":
        from repro.analysis.crossover import (
            describe_shard_grid,
            shard_crossover_grid,
        )

        regimes = shard_crossover_grid(fidelity=args.fidelity, jobs=jobs)
        for row in regimes:
            show(row.response)
            print()
        print(describe_shard_grid(regimes))
    elif number == "adaptive":
        from repro.analysis.adaptive import (
            adaptive_crossover_sweep,
            describe_adaptive,
        )

        regime = adaptive_crossover_sweep(fidelity=args.fidelity, jobs=jobs)
        show(regime.response, improvement=None)
        print()
        show(regime.aborts, improvement=None)
        print()
        print(describe_adaptive(regime))
    elif number == "decompose":
        # Sim-vs-live per-phase divergence for both calibration
        # scenarios: the attributed version of PR 5's raw response gap.
        from repro.live.scenario import ScenarioSpec
        from repro.obs.decompose import sim_vs_live

        for protocol in ("s2pl", "g2pl"):
            spec = ScenarioSpec(protocol=protocol, mode="calibrate",
                                n_clients=4, latency=2.0, repeats=3)
            report, _live, _reference = sim_vs_live(spec)
            print(report.describe())
            print()
    else:
        print(f"unknown figure {number!r}; choose 1-15, loss, "
              f"loss-aborts, scale, decompose, shard-crossover, "
              f"or adaptive",
              file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args):
    from repro.perf.bench import (
        compare_benchmarks,
        load_benchmark,
        run_benchmarks,
        write_benchmark,
    )

    def progress(name, done, total):
        print(f"  {name}: repeat {done}/{total}", file=sys.stderr)

    results = run_benchmarks(quick=args.quick, repeats=args.repeats,
                             progress=progress if args.verbose else None)
    for name, cell in results["cells"].items():
        print(f"  {name:18} {cell['events_per_sec']:>12,.0f} ev/s  "
              f"({cell['wall_seconds']:.3f}s, {cell['events']:,} events)")
    if args.out:
        write_benchmark(args.out, results)
        print(f"wrote {args.out}")
    if args.baseline:
        comparison = compare_benchmarks(
            results, load_benchmark(args.baseline),
            tolerance=args.tolerance, normalize=args.normalize)
        print(comparison.describe())
        if not comparison.ok:
            return 1
    return 0


def _cmd_live(args):
    from repro.live.harness import calibrate
    from repro.live.scenario import ScenarioSpec

    spec = ScenarioSpec(
        protocol=args.protocol, mode=args.mode, n_clients=args.clients,
        latency=args.latency, seed=args.seed, think=args.think,
        repeats=args.repeats, duration=args.duration, n_items=args.items,
        read_probability=args.pr, trace_export=args.trace,
        probe_interval=args.probe_interval)
    report = calibrate(spec, time_scale=args.time_scale)
    print(report.describe())
    if args.trace:
        from repro.obs.decompose import (
            common_committed,
            compare,
            decompose_records,
        )
        from repro.obs.export import (
            write_merged_chrome_trace,
            write_phases_csv,
        )

        merged = report.live.merged
        prefix = args.out
        chrome = f"{prefix}.chrome.json"
        csv_path = f"{prefix}.phases.csv"
        write_merged_chrome_trace(chrome, merged.payloads)
        write_phases_csv(csv_path, merged.records.values())
        sim_records, live_records = common_committed(report.reference,
                                                     merged)
        divergence = compare(
            decompose_records(sim_records, label=f"sim:{spec.protocol}"),
            decompose_records(live_records, label=f"live:{spec.protocol}"))
        print(divergence.describe())
        print(f"wrote {chrome} (all processes on one timeline; open in "
              f"Perfetto / chrome://tracing)")
        print(f"wrote {csv_path} ({len(merged.records)} txn records)")
    if not report.ok:
        print("calibration FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_list(_args):
    print("protocols:", ", ".join(available_protocols()))
    print("figures: 1 (worked example), 2-4 (response vs latency), "
          "5-7 (response vs read probability), 8-9 (aborts vs latency), "
          "10 (read-only deadlocks), 11 (forward-list length), "
          "12-15 (client scalability), loss / loss-aborts "
          "(fault injection: metrics vs message-loss probability), "
          "scale (open-arrival population: throughput and p99 vs "
          "logical users, uniform vs Zipf hot keys), "
          "shard-crossover (shard count x inter-region latency "
          "dominance grid), "
          "decompose (sim-vs-live per-phase latency divergence for "
          "both calibration scenarios), "
          "adaptive (hybrid-vs-static contention sweep with the "
          "repro.adapt acceptance gate)")
    print("fidelities:", ", ".join(f.label for f in Fidelity))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce the g-2PL vs s-2PL study (ICDE 1998)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one simulation")
    run_parser.add_argument("--protocol", default="g2pl",
                            choices=available_protocols())
    run_parser.add_argument("--verbose", "-v", action="store_true",
                            help="also print engine counters and "
                                 "response-time percentiles")
    run_parser.add_argument("--profile", action="store_true",
                            help="wrap the run in cProfile and write "
                                 "profile_<protocol>.pstats")
    _add_workload_args(run_parser)
    _add_jobs_arg(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = sub.add_parser("compare",
                                    help="race protocols on one workload")
    compare_parser.add_argument("--protocols", nargs="+",
                                default=["s2pl", "g2pl"],
                                choices=available_protocols())
    compare_parser.add_argument("--replications", type=int, default=2)
    compare_parser.add_argument("--profile", action="store_true",
                                help="wrap the comparison in cProfile and "
                                     "write profile_<protocols>.pstats")
    _add_workload_args(compare_parser)
    _add_jobs_arg(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    bench_parser = sub.add_parser(
        "bench", help="run the kernel benchmark harness and write "
                      "schema-versioned BENCH_kernel.json")
    bench_parser.add_argument("--quick", action="store_true",
                              help="short cells (CI smoke mode)")
    bench_parser.add_argument("--repeats", type=int, default=None,
                              metavar="N",
                              help="timing repeats per cell; best-of-N "
                                   "(default: 3, or 2 with --quick)")
    bench_parser.add_argument("--out", default=None, metavar="PATH",
                              help="write results JSON here "
                                   "(e.g. BENCH_kernel.json)")
    bench_parser.add_argument("--baseline", default=None, metavar="PATH",
                              help="compare against a previous results "
                                   "file; exit 1 on regression")
    bench_parser.add_argument("--tolerance", type=float, default=0.2,
                              metavar="F",
                              help="allowed fractional events/sec drop "
                                   "vs the baseline (default 0.2)")
    bench_parser.add_argument("--normalize", action="store_true",
                              help="normalise ratios by the engine_churn "
                                   "cell (cancels host speed; use when "
                                   "the baseline came from another "
                                   "machine)")
    bench_parser.add_argument("--verbose", "-v", action="store_true",
                              help="print per-repeat progress")
    bench_parser.set_defaults(func=_cmd_bench)

    figure_parser = sub.add_parser("figure",
                                   help="regenerate a paper figure")
    figure_parser.add_argument("number",
                               help="figure number 1-15, or loss / "
                                    "loss-aborts / scale / decompose / "
                                    "shard-crossover / adaptive")
    figure_parser.add_argument("--fidelity", default="bench",
                               choices=[f.label for f in Fidelity])
    _add_jobs_arg(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    trace_parser = sub.add_parser(
        "trace", help="run one traced simulation and export the trace "
                      "(JSONL + Chrome trace-event + probe CSV)")
    trace_parser.add_argument("--protocol", default="g2pl",
                              choices=available_protocols())
    trace_parser.add_argument("--out", default="trace", metavar="PREFIX",
                              help="output path prefix (default: trace)")
    _add_workload_args(trace_parser)
    trace_parser.set_defaults(func=_cmd_trace)

    decompose_parser = sub.add_parser(
        "decompose", help="per-phase response-time decomposition of one "
                          "traced run (add --live for the sim-vs-live "
                          "divergence report over loopback TCP)")
    decompose_parser.add_argument("--protocol", default="g2pl",
                                  choices=available_protocols())
    decompose_parser.add_argument("--out", default=None, metavar="PREFIX",
                                  help="also write PREFIX.phases.csv")
    decompose_parser.add_argument("--live", action="store_true",
                                  help="run the scenario over real "
                                       "processes too and attribute the "
                                       "sim-vs-live gap per phase")
    decompose_parser.add_argument("--mode", default="calibrate",
                                  choices=("calibrate", "workload"),
                                  help="live scenario mode (with --live)")
    decompose_parser.add_argument("--live-clients", type=int, default=4,
                                  metavar="N",
                                  help="client processes for --live "
                                       "(default 4)")
    decompose_parser.add_argument("--live-latency", type=float,
                                  default=2.0, metavar="L",
                                  help="one-way latency in sim units for "
                                       "--live (default 2.0)")
    decompose_parser.add_argument("--time-scale", type=float, default=0.02,
                                  metavar="S",
                                  help="wall seconds per sim unit for "
                                       "--live (default 0.02)")
    decompose_parser.add_argument("--repeats", type=int, default=3,
                                  help="calibrate-mode epochs (--live)")
    decompose_parser.add_argument("--think", type=float, default=1.0,
                                  help="calibrate-mode think time "
                                       "(--live)")
    decompose_parser.add_argument("--duration", type=float, default=120.0,
                                  help="workload-mode horizon (--live)")
    _add_workload_args(decompose_parser)
    decompose_parser.set_defaults(func=_cmd_decompose)

    report_parser = sub.add_parser(
        "report", help="regenerate the full reproduction report "
                       "(all figures + round-accounting table)")
    report_parser.add_argument("--fidelity", default="bench",
                               choices=[f.label for f in Fidelity])
    report_parser.add_argument("--seed", type=int, default=101)
    report_parser.add_argument("--quick", action="store_true",
                               help="endpoints-only sweeps (smoke check)")
    report_parser.add_argument("--out", default=None, metavar="PATH",
                               help="write markdown here instead of stdout")
    _add_jobs_arg(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    live_parser = sub.add_parser(
        "live", help="run the protocol over real asyncio TCP processes "
                     "(loopback, shaped latency) and calibrate against "
                     "the simulator")
    live_parser.add_argument("--protocol", default="s2pl",
                             choices=available_protocols())
    live_parser.add_argument("--clients", type=int, default=4,
                             help="client processes (calibrate mode: "
                                  "m contenders + 1 primer)")
    live_parser.add_argument("--latency", type=float, default=2.0,
                             help="one-way link latency in simulation "
                                  "units")
    live_parser.add_argument("--duration", type=float, default=120.0,
                             help="workload-mode horizon in simulation "
                                  "units (clients stop starting "
                                  "transactions after this)")
    live_parser.add_argument("--mode", default="calibrate",
                             choices=("calibrate", "workload"))
    live_parser.add_argument("--repeats", type=int, default=3,
                             help="calibrate-mode epochs (each commits "
                                  "clients-1 measured transactions)")
    live_parser.add_argument("--think", type=float, default=1.0,
                             help="calibrate-mode think time per "
                                  "operation")
    live_parser.add_argument("--time-scale", type=float, default=0.02,
                             metavar="S",
                             help="wall seconds per simulation unit "
                                  "(default 0.02)")
    live_parser.add_argument("--items", type=int, default=25,
                             help="workload-mode data items")
    live_parser.add_argument("--pr", type=float, default=0.6,
                             help="workload-mode read probability")
    live_parser.add_argument("--seed", type=int, default=1)
    live_parser.add_argument("--trace", action="store_true",
                             help="export every endpoint's structured "
                                  "events, merge them onto the shared "
                                  "clock origin, and print the sim-vs-"
                                  "live per-phase divergence report")
    live_parser.add_argument("--probe-interval", type=float, default=None,
                             metavar="T",
                             help="sample per-endpoint gauges every T "
                                  "sim units (with --trace they land in "
                                  "the merged timeline)")
    live_parser.add_argument("--out", default="live-trace",
                             metavar="PREFIX",
                             help="output path prefix for --trace "
                                  "artifacts (default: live-trace)")
    live_parser.set_defaults(func=_cmd_live)

    list_parser = sub.add_parser("list", help="list protocols and figures")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
