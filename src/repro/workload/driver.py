"""The client driver: the paper's per-client transaction loop.

Each client runs one transaction at a time (MPL 1). When a transaction
finishes — committed or aborted — the client idles for a uniformly
distributed period and then *replaces* it with a fresh transaction (§4:
aborted transactions are replaced, not retried).
"""

from repro.protocols.transaction import Transaction


class RunControl:
    """Shared run-length control: counts finished transactions and fires
    ``done_event`` when the target is reached (``termination="global"``).

    The ``client_id`` parameters are accepted and ignored so the driver
    loop can call either control flavour through one code path."""

    def __init__(self, sim, target_transactions):
        if target_transactions < 1:
            raise ValueError("target_transactions must be >= 1")
        self.sim = sim
        self.target = target_transactions
        self.finished = 0
        self.done_event = sim.event()
        self._next_txn_id = 0

    def next_txn_id(self, client_id=None):
        self._next_txn_id += 1
        return self._next_txn_id

    def transaction_finished(self, client_id=None):
        self.finished += 1
        if self.finished == self.target and not self.done_event.triggered:
            self.done_event.succeed(self.finished)

    def done_for(self, client_id):
        return self.done_event.triggered

    @property
    def done(self):
        return self.done_event.triggered


class QuotaRunControl:
    """Per-client run-length control (``termination="quota"``).

    Client ``c`` (1-based) owes ``total // N`` transactions plus one of
    the remainder when ``c <= total % N``; its k-th transaction gets id
    ``c + N*(k-1)``.  Every quota and id is a pure function of
    ``(client_id, position)``, with no shared counter — which is what
    lets an LP-partitioned run (``repro.core.lp``) mint exactly the ids a
    serial run would, without cross-partition coordination.  The run ends
    when every *managed* client has met its quota; an LP worker manages
    only its own shard's clients while ``n_clients`` stays global so the
    id arithmetic is identical.
    """

    def __init__(self, sim, target_transactions, n_clients, client_ids=None):
        if target_transactions < 1:
            raise ValueError("target_transactions must be >= 1")
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if target_transactions < n_clients:
            raise ValueError(
                f"quota termination needs total_transactions >= n_clients "
                f"({target_transactions} < {n_clients}): every client must "
                f"owe at least one transaction")
        self.sim = sim
        self.target = target_transactions
        self.n_clients = n_clients
        if client_ids is None:
            client_ids = range(1, n_clients + 1)
        base, rem = divmod(target_transactions, n_clients)
        self.quotas = {c: base + (1 if c <= rem else 0) for c in client_ids}
        self._minted = dict.fromkeys(self.quotas, 0)
        self._finished_by = dict.fromkeys(self.quotas, 0)
        self._open = len(self.quotas)
        self.finished = 0
        self.done_event = sim.event()

    def next_txn_id(self, client_id=None):
        k = self._minted[client_id] + 1
        self._minted[client_id] = k
        return client_id + self.n_clients * (k - 1)

    def transaction_finished(self, client_id=None):
        self.finished += 1
        done = self._finished_by[client_id] + 1
        self._finished_by[client_id] = done
        if done == self.quotas[client_id]:
            self._open -= 1
            if self._open == 0 and not self.done_event.triggered:
                self.done_event.succeed(self.finished)

    def done_for(self, client_id):
        return self._finished_by[client_id] >= self.quotas[client_id]

    @property
    def done(self):
        return self.done_event.triggered


class ClientDriver:
    """Generates and runs transactions at one client site.

    The paper fixes the multiprogramming level at 1; ``mpl`` > 1 (an
    extension knob) runs that many independent transaction streams at the
    same client site concurrently.
    """

    def __init__(self, sim, client_id, protocol_client, generator, control,
                 collector, mpl=1):
        if mpl < 1:
            raise ValueError("mpl must be >= 1")
        self.sim = sim
        self.client_id = client_id
        self.protocol_client = protocol_client
        self.generator = generator
        self.control = control
        self.collector = collector
        self.mpl = mpl
        self._live_execs = set()
        self._crashed = False
        self._restart_event = None

    def start(self):
        """Spawn the client loop(s); returns the list of processes."""
        return [self.sim.spawn(self._loop(stream))
                for stream in range(self.mpl)]

    # -- crash lifecycle (fault injection) -----------------------------------

    def crash(self):
        """Fail-stop this site: every in-flight transaction is interrupted
        (its coroutine aborts with reason ``client-crash``) and the loop(s)
        park until :meth:`restart`.

        Idempotent: a repeated ``crash()`` on an already-crashed site keeps
        the live restart event. Replacing it would orphan loops already
        parked on the old event — ``restart()`` would trigger only the new
        one and the parked loops would sleep forever."""
        self._crashed = True
        if self._restart_event is None or self._restart_event.triggered:
            self._restart_event = self.sim.event()
        for proc in list(self._live_execs):
            proc.interrupt("client-crash")

    def restart(self):
        """The site comes back up and resumes submitting transactions."""
        self._crashed = False
        event, self._restart_event = self._restart_event, None
        if event is not None and not event.triggered:
            event.succeed()

    def _loop(self, stream):
        stagger_key = (self.client_id if stream == 0
                       else f"{self.client_id}.s{stream}")
        yield self.sim.timeout(self.generator.initial_stagger(stagger_key))
        tracer = self.sim.tracer
        control = self.control
        client_id = self.client_id
        while not control.done_for(client_id):
            if self._crashed:
                yield self._restart_event  # parks forever without a restart
                continue
            spec = self.generator.next_spec(client_id)
            txn = Transaction(control.next_txn_id(client_id), client_id,
                              spec, birth=self.sim.now)
            if tracer is not None:
                tracer.txn_begin(txn)
            proc = self.sim.spawn(self.protocol_client.execute(txn))
            self._live_execs.add(proc)
            try:
                outcome = yield proc
            finally:
                self._live_execs.discard(proc)
            if control.done_for(client_id):
                break  # the run closed while this transaction was in flight
            self.collector.record_outcome(outcome)
            if tracer is not None:
                # Warmup transactions are traced but excluded from trace
                # aggregates, mirroring the metrics' transient elimination.
                tracer.txn_finished(outcome,
                                    measured=self.collector.measuring)
            control.transaction_finished(client_id)
            yield self.sim.timeout(self.generator.idle_time(client_id))
