"""Open-arrival traffic processes for client populations.

A closed-loop terminal (the paper's MPL-1 client) submits its next
transaction only after the previous one finishes; response time feeds
back into offered load. An *open* arrival process decouples the two: the
population submits work at a rate of its own, and the system either
keeps up or visibly saturates — the regime that matters at 10⁴–10⁶
logical users.

Three processes, all driven by one dedicated ``random.Random`` stream
per client site so trajectories replay bit-identically:

* :class:`PoissonArrivals` — homogeneous Poisson: exponential
  inter-arrival times at a constant rate (inversion sampling).
* :class:`BurstArrivals` — on/off modulated Poisson: the first
  ``on_fraction`` of every ``period`` runs at ``burst_factor`` times the
  base rate, the remainder at a reduced rate chosen so the *long-run
  mean equals the base rate* (burstiness is redistribution, not extra
  load).
* :class:`DiurnalArrivals` — sinusoidally modulated Poisson:
  ``rate(t) = base * (1 + amplitude * sin(2*pi*t/period))``.

The modulated processes sample by Lewis-Shedler thinning against their
peak rate: candidate points from a homogeneous Poisson at ``peak_rate``
are accepted with probability ``rate(t)/peak_rate``. Thinning is exact
(no discretisation) and deterministic given the stream.
"""

import math


def _exponential(random, rate):
    """One Exp(rate) draw by inversion (1-u keeps log's argument > 0)."""
    return -math.log(1.0 - random()) / rate


class PoissonArrivals:
    """Homogeneous Poisson arrivals at a constant ``rate``."""

    __slots__ = ("rate", "_random")

    def __init__(self, rng, rate):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.rate = rate
        self._random = rng.random

    def rate_at(self, when):
        return self.rate

    def next_arrival(self, now):
        """Absolute time of the next arrival after ``now``."""
        return now + _exponential(self._random, self.rate)


class _ModulatedArrivals:
    """Non-homogeneous Poisson via thinning; subclasses define rate_at."""

    __slots__ = ("rate", "peak_rate", "_random")

    def __init__(self, rng, rate, peak_rate):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.rate = rate
        self.peak_rate = peak_rate
        self._random = rng.random

    def rate_at(self, when):
        raise NotImplementedError

    def next_arrival(self, now):
        random = self._random
        peak = self.peak_rate
        when = now
        while True:
            when += _exponential(random, peak)
            if random() * peak <= self.rate_at(when):
                return when


class BurstArrivals(_ModulatedArrivals):
    """On/off bursts with the long-run mean pinned to the base rate.

    Within each ``period``: the on-phase (first ``on_fraction``) runs at
    ``burst_factor * rate``; the off-phase at
    ``rate * (1 - on_fraction*burst_factor) / (1 - on_fraction)`` ≥ 0
    (validated), so ``mean == rate`` exactly.
    """

    __slots__ = ("period", "on_fraction", "on_rate", "off_rate")

    def __init__(self, rng, rate, burst_factor=6.0, on_fraction=0.1,
                 period=2000.0):
        if not 0.0 < on_fraction < 1.0:
            raise ValueError(f"on_fraction must be in (0, 1), "
                             f"got {on_fraction!r}")
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, "
                             f"got {burst_factor!r}")
        if burst_factor * on_fraction > 1.0:
            raise ValueError(
                f"burst_factor {burst_factor!r} x on_fraction "
                f"{on_fraction!r} > 1: off-phase rate would be negative")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        on_rate = rate * burst_factor
        super().__init__(rng, rate, peak_rate=on_rate)
        self.period = period
        self.on_fraction = on_fraction
        self.on_rate = on_rate
        self.off_rate = (rate * (1.0 - on_fraction * burst_factor)
                         / (1.0 - on_fraction))

    def rate_at(self, when):
        phase = (when % self.period) / self.period
        return self.on_rate if phase < self.on_fraction else self.off_rate


class DiurnalArrivals(_ModulatedArrivals):
    """Sinusoidal day/night modulation around the base rate."""

    __slots__ = ("period", "amplitude")

    def __init__(self, rng, rate, period=20000.0, amplitude=0.8):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), "
                             f"got {amplitude!r}")
        super().__init__(rng, rate, peak_rate=rate * (1.0 + amplitude))
        self.period = period
        self.amplitude = amplitude

    def rate_at(self, when):
        return self.rate * (1.0 + self.amplitude
                            * math.sin(2.0 * math.pi * when / self.period))


def make_arrivals(config, rng, rate):
    """The configured arrival process for one site at ``rate`` txn/unit."""
    kind = config.arrival
    if kind == "poisson":
        return PoissonArrivals(rng, rate)
    if kind == "burst":
        return BurstArrivals(rng, rate, burst_factor=config.burst_factor,
                             on_fraction=config.burst_fraction,
                             period=config.burst_period)
    if kind == "diurnal":
        return DiurnalArrivals(rng, rate, period=config.diurnal_period,
                               amplitude=config.diurnal_amplitude)
    raise ValueError(f"unknown arrival process {kind!r}")
