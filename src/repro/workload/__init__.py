"""Workload generation: the transaction profile of Table 1.

All clients are identical, run one transaction at a time (MPL 1), and draw
transactions with the same statistical profile: between ``min_ops`` and
``max_ops`` distinct hot items accessed sequentially, each access a read
with probability ``read_probability``, a per-operation think time and an
inter-transaction idle time both uniformly distributed.

Population runs (``config.population``) swap the closed-loop terminal
model for an open-arrival population state machine: see
:mod:`repro.workload.population` and :mod:`repro.workload.arrivals`.
"""

from repro.workload.arrivals import (
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.workload.driver import ClientDriver, QuotaRunControl, RunControl
from repro.workload.generator import WorkloadGenerator, WorkloadParams
from repro.workload.population import (
    OpenArrivalGenerator,
    PopulationDriver,
    PopulationState,
    TransactionClass,
    ZipfItemSampler,
    default_classes,
    parse_txn_mix,
    split_population,
)
from repro.workload.spec import Operation, TransactionSpec

__all__ = [
    "BurstArrivals",
    "ClientDriver",
    "DiurnalArrivals",
    "OpenArrivalGenerator",
    "Operation",
    "PoissonArrivals",
    "PopulationDriver",
    "PopulationState",
    "QuotaRunControl",
    "RunControl",
    "TransactionClass",
    "TransactionSpec",
    "WorkloadGenerator",
    "WorkloadParams",
    "ZipfItemSampler",
    "default_classes",
    "make_arrivals",
    "parse_txn_mix",
    "split_population",
]
