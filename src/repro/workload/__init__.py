"""Workload generation: the transaction profile of Table 1.

All clients are identical, run one transaction at a time (MPL 1), and draw
transactions with the same statistical profile: between ``min_ops`` and
``max_ops`` distinct hot items accessed sequentially, each access a read
with probability ``read_probability``, a per-operation think time and an
inter-transaction idle time both uniformly distributed.
"""

from repro.workload.driver import ClientDriver, RunControl
from repro.workload.generator import WorkloadGenerator, WorkloadParams
from repro.workload.spec import Operation, TransactionSpec

__all__ = [
    "ClientDriver",
    "Operation",
    "RunControl",
    "TransactionSpec",
    "WorkloadGenerator",
    "WorkloadParams",
]
