"""Random transaction generation per Table 1."""

from dataclasses import dataclass
from typing import Optional

from repro.locking.modes import LockMode
from repro.workload.spec import Operation, TransactionSpec


@dataclass(frozen=True)
class WorkloadParams:
    """The tunable knobs of the paper's workload (Table 1 defaults).

    ``access_skew`` extends the paper's uniform access with a Zipf-like
    popularity law (weight of the item at rank r is 1/(r+1)^skew; 0 means
    uniform, as published). The paper's §3.4 remark — "the more a certain
    data item is requested ... more is the performance gain, since the
    grouping effect is emphasized when the forward list is longer" — is
    directly testable by raising the skew (ablation A6).
    """

    n_items: int = 25
    min_ops: int = 1
    max_ops: int = 5
    read_probability: float = 0.6
    think_min: float = 1.0
    think_max: float = 3.0
    idle_min: float = 2.0
    idle_max: float = 10.0
    access_skew: float = 0.0
    # Sharded workloads: with cross_shard_probability = p, a transaction
    # is cross-shard-eligible with probability p (items drawn from the
    # full pool) and otherwise local to the client's home shard. None
    # keeps the single-pool draw sequence byte-identical to PR 5 runs
    # regardless of n_shards.
    n_shards: int = 1
    cross_shard_probability: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.read_probability <= 1.0:
            raise ValueError(
                f"read_probability {self.read_probability} outside [0, 1]")
        if not 1 <= self.min_ops <= self.max_ops:
            raise ValueError(
                f"need 1 <= min_ops <= max_ops, got "
                f"{self.min_ops}..{self.max_ops}")
        if self.max_ops > self.n_items:
            raise ValueError(
                f"max_ops {self.max_ops} exceeds the {self.n_items}-item pool")
        if self.think_min > self.think_max or self.think_min < 0:
            raise ValueError("invalid think time range")
        if self.idle_min > self.idle_max or self.idle_min < 0:
            raise ValueError("invalid idle time range")
        if self.access_skew < 0:
            raise ValueError(f"negative access_skew {self.access_skew}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_shards > self.n_items:
            raise ValueError(
                f"n_shards {self.n_shards} exceeds the "
                f"{self.n_items}-item pool")
        if self.cross_shard_probability is not None and not (
                0.0 <= self.cross_shard_probability <= 1.0):
            raise ValueError(
                f"cross_shard_probability {self.cross_shard_probability} "
                f"outside [0, 1]")

    def item_weights(self):
        """Unnormalised popularity weights, item id = popularity rank."""
        if self.access_skew == 0.0:
            return [1.0] * self.n_items
        return [1.0 / (rank + 1) ** self.access_skew
                for rank in range(self.n_items)]


class WorkloadGenerator:
    """Draws transaction specs and idle times from per-client streams.

    Per-client random streams keep clients statistically identical yet
    independent, and keep a client's draws reproducible regardless of how
    other clients interleave.
    """

    def __init__(self, params, streams):
        self.params = params
        self.streams = streams
        self.generated = 0
        # Per-(client, purpose) stream cache: resolving a stream costs an
        # f-string plus a dict probe in RandomStreams; the driver asks for
        # the same streams once per transaction, so memoise them here.
        self._txn_streams = {}
        self._idle_streams = {}
        self._stagger_streams = {}
        # Home-shard pools depend only on (n_items, n_shards), both fixed
        # for the generator's lifetime; computed once on first use instead
        # of re-partitioning the item space on every local-transaction draw.
        self._home_pools = None

    def _stream(self, client_id, purpose):
        return self.streams.stream(f"client{client_id}.{purpose}")

    def _txn_stream(self, client_id):
        stream = self._txn_streams.get(client_id)
        if stream is None:
            stream = self._stream(client_id, "txn")
            self._txn_streams[client_id] = stream
        return stream

    def _sample_items(self, rng, n_ops, pool=None):
        params = self.params
        if pool is None:
            if params.access_skew == 0.0:
                return rng.sample(range(params.n_items), n_ops)
            available = list(range(params.n_items))
        else:
            available = list(pool)
            if params.access_skew == 0.0:
                return rng.sample(available, n_ops)
        # Weighted sampling without replacement (successive draws).
        all_weights = params.item_weights()
        weights = [all_weights[item] for item in available]
        chosen = []
        for _ in range(n_ops):
            total = sum(weights)
            point = rng.random() * total
            cumulative = 0.0
            index = len(available) - 1
            for i, weight in enumerate(weights):
                cumulative += weight
                if point < cumulative:
                    index = i
                    break
            chosen.append(available.pop(index))
            weights.pop(index)
        return chosen

    def home_shard(self, client_id):
        """The shard whose items a client's local transactions draw from."""
        return (client_id - 1) % self.params.n_shards

    def _home_pool(self, client_id):
        pools = self._home_pools
        if pools is None:
            from repro.protocols.sharding import partition_items

            pools = self._home_pools = partition_items(
                self.params.n_items, self.params.n_shards)
        return pools[self.home_shard(client_id)]

    def next_spec(self, client_id):
        """Generate the next transaction for ``client_id``."""
        params = self.params
        rng = self._txn_stream(client_id)
        n_ops = rng.randint(params.min_ops, params.max_ops)
        if params.cross_shard_probability is None:
            items = self._sample_items(rng, n_ops)
        elif rng.random() < params.cross_shard_probability:
            # Cross-shard-eligible: draw from the full pool, so the
            # transaction spans home servers whenever the draw does.
            items = self._sample_items(rng, n_ops)
        else:
            # Local: confined to the client's home shard.
            pool = self._home_pool(client_id)
            items = self._sample_items(rng, min(n_ops, len(pool)), pool)
        read_probability = params.read_probability
        think_min = params.think_min
        think_max = params.think_max
        random = rng.random
        uniform = rng.uniform
        operations = tuple(
            Operation(
                item_id=item,
                mode=(LockMode.READ
                      if random() < read_probability
                      else LockMode.WRITE),
                think_time=uniform(think_min, think_max),
            )
            for item in items
        )
        self.generated += 1
        return TransactionSpec(operations=operations)

    def idle_time(self, client_id):
        """Idle period before the client's next transaction."""
        stream = self._idle_streams.get(client_id)
        if stream is None:
            stream = self._stream(client_id, "idle")
            self._idle_streams[client_id] = stream
        return stream.uniform(self.params.idle_min, self.params.idle_max)

    def initial_stagger(self, client_id):
        """Start-up desynchronisation: the first transaction of each client
        begins after one idle-time draw, so all clients do not fire their
        first request at t=0 in lockstep."""
        # One draw per client per run: caching the stream avoids the
        # f-string rebuild, but buffering would prefetch draws nobody uses.
        stream = self._stagger_streams.get(client_id)
        if stream is None:
            stream = self._stream(client_id, "stagger")
            self._stagger_streams[client_id] = stream
        return stream.uniform(0.0, self.params.idle_max)
