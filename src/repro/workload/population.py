"""Multiplexed client populations: 10⁴–10⁶ logical users per run.

The paper's client model is one closed-loop MPL-1 terminal per site —
one coroutine each, fine at 50 clients, hopeless at a million. A
population run keeps the protocol stack exactly as-is (the same
``n_clients`` protocol client sites, locks, 2PL rounds) but replaces
each site's terminal loop with a :class:`PopulationDriver`: a state
machine multiplexing that site's share of ``config.population`` logical
users. Traffic arrives via an open arrival process
(:mod:`repro.workload.arrivals`); each arrival picks a logical user, a
transaction class from the configured mix, and Zipf-skewed items, and
runs the transaction through the site's protocol client.

Memory stays bounded no matter the population or run length: the driver
tracks only *busy* users (a sparse dict, capped by admission control at
``max_inflight_per_site``), never a per-user object for the idle
millions. Arrivals landing on a busy user are counted and skipped (a
user submits one transaction at a time, as in the closed loop); arrivals
beyond the in-flight cap are shed — a saturated front door, not an
infinite backlog.

Determinism: each site draws from two dedicated named streams
(``client{id}.arrival`` for arrival times, ``client{id}.popn`` for user
picks and spec draws), so population runs replay bit-identically at any
``jobs=`` fan-out and never perturb the closed-loop streams.
"""

import bisect
import itertools
from dataclasses import dataclass, field

from repro.locking.modes import LockMode
from repro.protocols.transaction import Transaction
from repro.workload.spec import Operation, TransactionSpec


@dataclass(frozen=True)
class TransactionClass:
    """One class in a mixed workload profile (size range + read ratio)."""

    name: str
    weight: float
    min_ops: int
    max_ops: int
    read_probability: float

    def __post_init__(self):
        if not self.name:
            raise ValueError("transaction class needs a name")
        if self.weight <= 0:
            raise ValueError(
                f"class {self.name!r}: weight must be positive, "
                f"got {self.weight!r}")
        if not 1 <= self.min_ops <= self.max_ops:
            raise ValueError(
                f"class {self.name!r}: need 1 <= min_ops <= max_ops, "
                f"got {self.min_ops}..{self.max_ops}")
        if not 0.0 <= self.read_probability <= 1.0:
            raise ValueError(
                f"class {self.name!r}: read_probability "
                f"{self.read_probability!r} outside [0, 1]")


def parse_txn_mix(text, n_items):
    """Parse ``"name:weight:min-max:read_prob,..."`` into classes.

    Example: ``"browse:6:1-3:0.9,update:3:2-5:0.3"`` — six browses for
    every three updates; browses touch 1–3 items at 90% reads.
    """
    classes = []
    seen = set()
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 4:
            raise ValueError(
                f"malformed transaction class {chunk!r} "
                f"(expected name:weight:min-max:read_prob)")
        name, weight_text, ops_text, pr_text = parts
        ops_parts = ops_text.split("-")
        if len(ops_parts) != 2:
            raise ValueError(
                f"class {name!r}: malformed ops range {ops_text!r} "
                f"(expected min-max)")
        try:
            weight = float(weight_text)
            min_ops = int(ops_parts[0])
            max_ops = int(ops_parts[1])
            read_probability = float(pr_text)
        except ValueError as exc:
            raise ValueError(
                f"malformed transaction class {chunk!r}: {exc}") from None
        if name in seen:
            raise ValueError(f"duplicate transaction class {name!r}")
        seen.add(name)
        cls = TransactionClass(name, weight, min_ops, max_ops,
                               read_probability)
        if cls.max_ops > n_items:
            raise ValueError(
                f"class {name!r}: max_ops {cls.max_ops} exceeds the "
                f"{n_items}-item pool")
        classes.append(cls)
    if not classes:
        raise ValueError(f"empty transaction mix {text!r}")
    return tuple(classes)


def default_classes(params):
    """The single-class mix matching the closed-loop workload knobs."""
    return (TransactionClass("default", 1.0, params.min_ops, params.max_ops,
                             params.read_probability),)


def split_population(population, n_clients):
    """Users per site: as even as possible, remainder to the early sites."""
    base, remainder = divmod(population, n_clients)
    return [base + (1 if index < remainder else 0)
            for index in range(n_clients)]


class ZipfItemSampler:
    """Draws distinct items under the workload's popularity law.

    Single draws are O(log n) (cumulative weights + bisect); distinct
    sets use rejection against already-chosen items with a deterministic
    rank-order fill as the bounded fallback, so a draw never loops
    unboundedly even when ``n_ops`` approaches ``n_items`` under extreme
    skew.
    """

    def __init__(self, params):
        self.n_items = params.n_items
        self._cumulative = list(itertools.accumulate(params.item_weights()))

    def sample_one(self, rng):
        point = rng.random() * self._cumulative[-1]
        index = bisect.bisect_right(self._cumulative, point)
        return min(index, self.n_items - 1)

    def sample(self, rng, n_ops):
        """``n_ops`` distinct items (popularity-weighted, unordered set
        semantics but deterministic order)."""
        chosen = []
        seen = set()
        attempts_left = 16 * n_ops + 32
        while len(chosen) < n_ops and attempts_left > 0:
            attempts_left -= 1
            item = self.sample_one(rng)
            if item not in seen:
                seen.add(item)
                chosen.append(item)
        if len(chosen) < n_ops:
            # Pathological skew: fill from the most popular ranks down.
            for item in range(self.n_items):
                if item not in seen:
                    seen.add(item)
                    chosen.append(item)
                    if len(chosen) == n_ops:
                        break
        return chosen


class OpenArrivalGenerator:
    """Per-site spec factory for population runs.

    Unlike :class:`~repro.workload.generator.WorkloadGenerator` (one
    stream per closed-loop client), all of a site's logical users share
    the site's ``popn`` stream — per-user streams at population 10⁶
    would defeat the bounded-memory design for no statistical gain.
    """

    def __init__(self, params, classes, rng):
        self.params = params
        self.classes = classes
        self.sampler = ZipfItemSampler(params)
        self._rng = rng
        self._class_cumulative = list(itertools.accumulate(
            cls.weight for cls in classes))
        self.generated = 0
        self.by_class = {cls.name: 0 for cls in classes}

    def _pick_class(self, rng):
        cumulative = self._class_cumulative
        if len(cumulative) == 1:
            return self.classes[0]
        point = rng.random() * cumulative[-1]
        index = bisect.bisect_right(cumulative, point)
        return self.classes[min(index, len(self.classes) - 1)]

    def next_spec(self):
        rng = self._rng
        cls = self._pick_class(rng)
        n_ops = rng.randint(cls.min_ops, cls.max_ops)
        items = self.sampler.sample(rng, n_ops)
        read_probability = cls.read_probability
        think_min = self.params.think_min
        think_max = self.params.think_max
        random = rng.random
        uniform = rng.uniform
        operations = tuple(
            Operation(
                item_id=item,
                mode=(LockMode.READ
                      if random() < read_probability
                      else LockMode.WRITE),
                think_time=uniform(think_min, think_max),
            )
            for item in items
        )
        self.generated += 1
        self.by_class[cls.name] += 1
        return TransactionSpec(operations=operations)


@dataclass
class PopulationState:
    """One site's population counters (all O(1) memory except ``active``,
    which holds only busy users and is capped by admission control)."""

    n_users: int
    arrivals: int = 0
    busy_skipped: int = 0
    shed: int = 0
    started: int = 0
    peak_active: int = 0
    active: dict = field(default_factory=dict)  # user index -> txn id

    @property
    def inflight(self):
        return len(self.active)


class PopulationDriver:
    """Multiplexes one site's share of the logical-user population.

    One arrival-loop coroutine per site plus one short-lived coroutine
    per *in-flight* transaction (capped at ``max_inflight``) — never a
    coroutine per user. Outcome handling (collector, tracer, run
    control) mirrors :class:`~repro.workload.driver.ClientDriver`
    exactly, so metrics and traces mean the same thing in both models.
    """

    def __init__(self, sim, client_id, protocol_client, generator, control,
                 collector, arrivals, n_users, user_rng, max_inflight=256):
        if n_users < 1:
            raise ValueError("a population site needs >= 1 logical user")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.sim = sim
        self.client_id = client_id
        self.protocol_client = protocol_client
        self.generator = generator
        self.control = control
        self.collector = collector
        self.arrivals = arrivals
        self.max_inflight = max_inflight
        self.state = PopulationState(n_users=n_users)
        self._user_rng = user_rng

    def start(self):
        """Spawn the site's arrival loop; returns the process list."""
        return [self.sim.spawn(self._arrival_loop())]

    def _arrival_loop(self):
        sim = self.sim
        control = self.control
        arrivals = self.arrivals
        while not control.done:
            when = arrivals.next_arrival(sim.now)
            yield sim.timeout(when - sim.now)
            if control.done:
                break
            self._on_arrival()

    def _on_arrival(self):
        state = self.state
        state.arrivals += 1
        user = self._user_rng.randrange(state.n_users)
        if user in state.active:
            # This user still has a transaction in flight; a logical user
            # submits one at a time (as in the closed loop), so the
            # arrival is counted and dropped, not queued.
            state.busy_skipped += 1
            return
        if len(state.active) >= self.max_inflight:
            state.shed += 1
            return
        spec = self.generator.next_spec()
        txn = Transaction(self.control.next_txn_id(), self.client_id,
                          spec, birth=self.sim.now)
        state.active[user] = txn.txn_id
        state.started += 1
        if len(state.active) > state.peak_active:
            state.peak_active = len(state.active)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.txn_begin(txn)
        self.sim.spawn(self._run(user, txn))

    def _run(self, user, txn):
        # Inlined rather than spawned as a nested process: with crash
        # faults excluded for population runs there is nothing to
        # interrupt, and one coroutine per transaction (not two) is what
        # keeps 10⁵ transactions/run cheap.
        try:
            outcome = yield from self.protocol_client.execute(txn)
        finally:
            self.state.active.pop(user, None)
        if self.control.done:
            return  # the run closed while this transaction was in flight
        self.collector.record_outcome(outcome)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.txn_finished(outcome, measured=self.collector.measuring)
        self.control.transaction_finished()
