"""Immutable transaction specifications."""

from dataclasses import dataclass
from typing import Tuple

from repro.locking.modes import LockMode


@dataclass(frozen=True)
class Operation:
    """One sequential data access: which item, which mode, how long the
    client computes after the data arrives."""

    item_id: int
    mode: LockMode
    think_time: float

    @property
    def is_read(self):
        return self.mode is LockMode.READ


@dataclass(frozen=True)
class TransactionSpec:
    """The full access list of one transaction, fixed at generation time."""

    operations: Tuple[Operation, ...]

    def __post_init__(self):
        if not self.operations:
            raise ValueError("a transaction needs at least one operation")
        items = [op.item_id for op in self.operations]
        if len(set(items)) != len(items):
            raise ValueError(f"duplicate items in transaction: {items}")

    @property
    def n_ops(self):
        return len(self.operations)

    @property
    def items(self):
        return tuple(op.item_id for op in self.operations)

    @property
    def n_writes(self):
        return sum(1 for op in self.operations if not op.is_read)

    @property
    def is_read_only(self):
        return self.n_writes == 0
